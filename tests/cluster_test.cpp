// Cluster head + membership client: join/leave protocol, history tables,
// boundary tracking, revocation announcements, blacklists.
#include <gtest/gtest.h>

#include <memory>

#include "common/assert.hpp"
#include "cluster/cluster_head.hpp"
#include "cluster/membership_client.hpp"

namespace blackdp::cluster {
namespace {

/// Table-I highway with all 10 cluster heads, plus helpers to add vehicles.
class ClusterWorld {
 public:
  ClusterWorld()
      : highway_{10'000.0, 200.0, 1'000.0},
        medium_{simulator_, sim::Rng{3}, mediumConfig()},
        backbone_{simulator_} {
    for (std::uint32_t c = 1; c <= highway_.clusterCount(); ++c) {
      auto node = std::make_unique<net::BasicNode>(
          simulator_, medium_, common::NodeId{1000 + c},
          mobility::LinearMotion::stationary(
              highway_.clusterCenter(common::ClusterId{c})));
      node->setLocalAddress(common::Address{100 + c});
      heads_.push_back(std::make_unique<ClusterHead>(
          simulator_, *node, backbone_, highway_, common::ClusterId{c}));
      headNodes_.push_back(std::move(node));
    }
  }

  struct Vehicle {
    std::unique_ptr<net::BasicNode> node;
    std::unique_ptr<MembershipClient> membership;
  };

  Vehicle makeVehicle(std::uint32_t id, double x, double speedMps,
                      mobility::Direction direction) {
    Vehicle v;
    v.node = std::make_unique<net::BasicNode>(
        simulator_, medium_, common::NodeId{id},
        mobility::LinearMotion{{x, 100.0}, speedMps, direction,
                               simulator_.now()});
    v.node->setLocalAddress(common::Address{id});
    v.membership =
        std::make_unique<MembershipClient>(simulator_, *v.node, highway_);
    return v;
  }

  [[nodiscard]] ClusterHead& head(std::uint32_t c) { return *heads_[c - 1]; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const mobility::Highway& highway() const { return highway_; }

  void runFor(sim::Duration d) { simulator_.run(simulator_.now() + d); }

 private:
  static net::MediumConfig mediumConfig() {
    net::MediumConfig c;
    c.maxJitter = sim::Duration{};
    return c;
  }

  sim::Simulator simulator_;
  mobility::Highway highway_;
  net::WirelessMedium medium_;
  net::Backbone backbone_;
  std::vector<std::unique_ptr<net::BasicNode>> headNodes_;
  std::vector<std::unique_ptr<ClusterHead>> heads_;
};

TEST(ClusterTest, JoinRegistersWithCorrectHead) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 2'500.0, 0.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));

  EXPECT_EQ(v.membership->currentCluster(), common::ClusterId{3});
  EXPECT_EQ(v.membership->clusterHeadAddress(), common::Address{103});
  EXPECT_TRUE(world.head(3).isMember(common::Address{1}));
  EXPECT_FALSE(world.head(2).isMember(common::Address{1}));
  EXPECT_EQ(world.head(3).stats().joinsAccepted, 1u);
}

TEST(ClusterTest, OverlappedZoneOnlyOwningHeadClaims) {
  // A broadcast JREQ near a boundary reaches both CHs; only the CH whose
  // segment contains the reported position accepts.
  ClusterWorld world;
  auto v = world.makeVehicle(1, 1'999.0, 0.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));

  EXPECT_TRUE(world.head(2).isMember(common::Address{1}));
  EXPECT_FALSE(world.head(3).isMember(common::Address{1}));
  EXPECT_GE(world.head(3).stats().joinsIgnored, 1u);
}

TEST(ClusterTest, BoundaryCrossingMovesMembership) {
  ClusterWorld world;
  // 25 m/s eastbound from x=900: crosses into cluster 2 after ~4 s.
  auto v = world.makeVehicle(1, 900.0, 25.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_TRUE(world.head(1).isMember(common::Address{1}));

  world.runFor(sim::Duration::seconds(5));
  EXPECT_FALSE(world.head(1).isMember(common::Address{1}));
  EXPECT_TRUE(world.head(1).isFormerMember(common::Address{1}));
  EXPECT_TRUE(world.head(2).isMember(common::Address{1}));
  EXPECT_EQ(v.membership->currentCluster(), common::ClusterId{2});
  EXPECT_EQ(world.head(1).stats().leaves, 1u);
}

TEST(ClusterTest, WestboundCrossingWorksToo) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 2'100.0, 25.0, mobility::Direction::kWestbound);
  v.membership->start();
  world.runFor(sim::Duration::seconds(6));
  EXPECT_TRUE(world.head(2).isMember(common::Address{1}));
  EXPECT_TRUE(world.head(3).isFormerMember(common::Address{1}));
}

TEST(ClusterTest, LeavingHighwayExitsNetwork) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 9'900.0, 25.0, mobility::Direction::kEastbound);
  bool exited = false;
  v.membership->setExitCallback([&] { exited = true; });
  v.membership->start();
  world.runFor(sim::Duration::seconds(10));
  EXPECT_TRUE(exited);
  EXPECT_FALSE(v.membership->currentCluster().has_value());
  EXPECT_TRUE(world.head(10).isFormerMember(common::Address{1}));
}

TEST(ClusterTest, JoinedCallbackFires) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 500.0, 0.0, mobility::Direction::kEastbound);
  common::ClusterId joined{};
  v.membership->setJoinedCallback(
      [&](common::ClusterId cluster, common::Address) { joined = cluster; });
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_EQ(joined, common::ClusterId{1});
}

TEST(ClusterTest, HistoryRecordKeepsDirection) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 900.0, 25.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::seconds(5));
  const auto record = world.head(1).historyRecord(common::Address{1});
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->direction, mobility::Direction::kEastbound);
}

TEST(ClusterTest, RejoiningClearsHistory) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 900.0, 25.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::seconds(5));  // now in cluster 2
  // Turn around and go back.
  v.node->setMotion(mobility::LinearMotion{
      v.node->radioPosition(), 25.0, mobility::Direction::kWestbound,
      world.simulator().now()});
  v.membership->forceRejoin();
  world.runFor(sim::Duration::seconds(5));
  EXPECT_TRUE(world.head(1).isMember(common::Address{1}));
  EXPECT_FALSE(world.head(1).isFormerMember(common::Address{1}));
}

TEST(ClusterTest, RevocationDropsMemberAndAnnounces) {
  ClusterWorld world;
  auto attacker =
      world.makeVehicle(66, 400.0, 0.0, mobility::Direction::kEastbound);
  auto witness =
      world.makeVehicle(2, 600.0, 0.0, mobility::Direction::kEastbound);
  attacker.membership->start();
  witness.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  ASSERT_TRUE(world.head(1).isMember(common::Address{66}));

  world.head(1).applyRevocation(
      {common::Address{66}, common::CertSerial{5},
       world.simulator().now() + sim::Duration::seconds(60)});
  world.runFor(sim::Duration::milliseconds(10));

  EXPECT_FALSE(world.head(1).isMember(common::Address{66}));
  EXPECT_TRUE(witness.membership->isBlacklisted(common::Address{66}));
  EXPECT_EQ(world.head(1).stats().revocationsAnnounced, 1u);
  EXPECT_TRUE(
      world.head(1).revocations().isRevokedSerial(common::CertSerial{5}));
}

TEST(ClusterTest, NewlyJoinedVehicleLearnsRevocationsFromJrep) {
  // §III-B2: "the CH needs to report the existing and newly-joined vehicles
  // about the recent revoked certificate information."
  ClusterWorld world;
  world.head(1).applyRevocation(
      {common::Address{66}, common::CertSerial{5},
       world.simulator().now() + sim::Duration::seconds(60)});

  auto late = world.makeVehicle(3, 500.0, 0.0, mobility::Direction::kEastbound);
  late.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_TRUE(late.membership->isBlacklisted(common::Address{66}));
  EXPECT_EQ(late.membership->stats().revocationsLearned, 1u);
}

TEST(ClusterTest, MembersListsCurrentMembership) {
  ClusterWorld world;
  auto a = world.makeVehicle(1, 100.0, 0.0, mobility::Direction::kEastbound);
  auto b = world.makeVehicle(2, 200.0, 0.0, mobility::Direction::kEastbound);
  a.membership->start();
  b.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_EQ(world.head(1).memberCount(), 2u);
  EXPECT_EQ(world.head(1).members().size(), 2u);
}

TEST(ClusterTest, MemberRecordTracksJoinPosition) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 777.0, 10.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  const auto record = world.head(1).memberRecord(common::Address{1});
  ASSERT_TRUE(record.has_value());
  EXPECT_NEAR(record->lastPosition.x, 777.0, 1.0);
  EXPECT_DOUBLE_EQ(record->speedMps, 10.0);
}

TEST(ClusterTest, FrameHookReceivesUnhandledFrames) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 500.0, 0.0, mobility::Direction::kEastbound);
  int hooked = 0;
  world.head(1).setFrameHook([&](const net::Frame&) {
    ++hooked;
    return true;
  });
  // An AODV RREQ broadcast is not cluster management; it lands in the hook.
  class Odd final : public net::Payload {
   public:
    [[nodiscard]] std::string_view typeName() const override { return "odd"; }
  };
  v.node->broadcast(net::makePayload<Odd>());
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_EQ(hooked, 1);
}

TEST(ClusterTest, BackboneHookRelaysPeerMessages) {
  ClusterWorld world;
  std::vector<common::ClusterId> from;
  world.head(2).setBackboneHook(
      [&](common::ClusterId sender, const net::PayloadPtr&) {
        from.push_back(sender);
      });
  class Note final : public net::Payload {
   public:
    [[nodiscard]] std::string_view typeName() const override { return "note"; }
  };
  world.head(1).sendOnBackbone(common::ClusterId{2},
                               net::makePayload<Note>());
  world.runFor(sim::Duration::milliseconds(10));
  ASSERT_EQ(from.size(), 1u);
  EXPECT_EQ(from[0], common::ClusterId{1});
}

TEST(ClusterTest, MembershipStatsCountProtocolActivity) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 900.0, 25.0, mobility::Direction::kEastbound);
  v.membership->start();
  world.runFor(sim::Duration::seconds(5));
  EXPECT_EQ(v.membership->stats().joinsSent, 2u);       // initial + crossing
  EXPECT_EQ(v.membership->stats().joinsConfirmed, 2u);
  EXPECT_EQ(v.membership->stats().leavesSent, 1u);
}

TEST(ClusterTest, StartTwiceAsserts) {
  ClusterWorld world;
  auto v = world.makeVehicle(1, 500.0, 0.0, mobility::Direction::kEastbound);
  v.membership->start();
  EXPECT_THROW(v.membership->start(), common::AssertionError);
}

}  // namespace
}  // namespace blackdp::cluster
