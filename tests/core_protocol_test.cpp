// BlackDP end-to-end protocol behaviour: the vehicle-side verifier and the
// RSU-side detector driven through full highway scenarios.
#include <gtest/gtest.h>

#include "scenario/highway_scenario.hpp"

namespace blackdp::core {
namespace {

using scenario::AttackType;
using scenario::HighwayScenario;
using scenario::ScenarioConfig;

ScenarioConfig baseConfig(std::uint64_t seed, AttackType attack,
                          std::uint32_t attackerCluster = 2) {
  ScenarioConfig config;
  config.seed = seed;
  config.attack = attack;
  config.attackerCluster = common::ClusterId{attackerCluster};
  config.evasion.firstEvasiveCluster = 99;  // deterministic: no evasion
  return config;
}

// ------------------------------------------------------------ honest world

TEST(VerifierTest, HonestWorldVerifiesWithoutReporting) {
  HighwayScenario world(baseConfig(1, AttackType::kNone));
  const VerificationReport report = world.runVerification();
  EXPECT_EQ(report.outcome, Outcome::kRouteVerified);
  EXPECT_FALSE(report.reported);
  EXPECT_TRUE(world.detectionSummary().sessions.empty());
}

TEST(VerifierTest, HonestWorldNeedsNoSecondDiscovery) {
  HighwayScenario world(baseConfig(2, AttackType::kNone));
  const VerificationReport report = world.runVerification();
  EXPECT_EQ(report.discoveryRounds, 1);
}

// ----------------------------------------------------------- single attack

TEST(VerifierTest, SingleBlackHoleIsConfirmedAndIsolated) {
  HighwayScenario world(baseConfig(3, AttackType::kSingle));
  const VerificationReport report = world.runVerification();

  EXPECT_EQ(report.outcome, Outcome::kAttackerConfirmed);
  EXPECT_EQ(report.chVerdict, Verdict::kSingleBlackHole);
  EXPECT_EQ(report.suspect, world.primaryAttacker()->address());
  EXPECT_TRUE(report.reported);
  // Paper flow: two discoveries, two silent Hellos, then the d_req.
  EXPECT_EQ(report.discoveryRounds, 2);
  EXPECT_EQ(report.helloProbes, 2);

  const scenario::DetectionSummary summary = world.detectionSummary();
  EXPECT_TRUE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
  EXPECT_EQ(summary.verdict, Verdict::kSingleBlackHole);

  // Isolation: TA revoked, renewal paused, blacklist propagated.
  EXPECT_EQ(world.taNetwork().revocations().size(), 1u);
  EXPECT_TRUE(world.taNetwork().isRenewalPaused(
      world.primaryAttacker()->nodeId));
  EXPECT_TRUE(world.source().membership->isBlacklisted(
      world.primaryAttacker()->address()));
}

TEST(VerifierTest, AttackerNeverCarriesData) {
  // The black hole never gets a verified route: zero data packets flow
  // through it (prevention even before detection completes).
  HighwayScenario world(baseConfig(4, AttackType::kSingle));
  (void)world.runVerification();
  EXPECT_EQ(world.primaryAttacker()->agent->stats().dataForwarded, 0u);
}

TEST(VerifierTest, FakeHelloReplyTriggersImmediateReport) {
  ScenarioConfig config = baseConfig(5, AttackType::kSingle);
  config.attackerFakesHelloReply = true;
  HighwayScenario world(config);
  const VerificationReport report = world.runVerification();
  EXPECT_EQ(report.outcome, Outcome::kAttackerConfirmed);
  // The anonymity response ends verification after a single Hello probe,
  // without a second route discovery (§III-B3).
  EXPECT_EQ(report.helloProbes, 1);
  EXPECT_EQ(report.discoveryRounds, 1);
}

TEST(VerifierTest, RevokedAttackerCannotRenew) {
  HighwayScenario world(baseConfig(6, AttackType::kSingle));
  (void)world.runVerification();
  const auto renewed = world.taNetwork().renew(
      world.primaryAttacker()->ta, world.primaryAttacker()->nodeId);
  ASSERT_FALSE(renewed.ok());
  EXPECT_EQ(renewed.error().code, "renewal-paused");
}

TEST(VerifierTest, SecondVerificationAfterIsolationUsesHonestRoute) {
  HighwayScenario world(baseConfig(7, AttackType::kSingle));
  (void)world.runVerification();

  VerificationReport second;
  bool done = false;
  world.source().verifier->establishVerifiedRoute(
      world.destination().address(), [&](const VerificationReport& r) {
        second = r;
        done = true;
      });
  ASSERT_TRUE(world.runUntil([&] { return done; }, sim::Duration::seconds(60)));
  EXPECT_EQ(second.outcome, Outcome::kRouteVerified);
  EXPECT_FALSE(second.reported);
}

// ------------------------------------------------------ cooperative attack

TEST(VerifierTest, CooperativeAttackConfirmsBothNodes) {
  HighwayScenario world(baseConfig(8, AttackType::kCooperative));
  const VerificationReport report = world.runVerification();
  EXPECT_EQ(report.outcome, Outcome::kAttackerConfirmed);
  EXPECT_EQ(report.chVerdict, Verdict::kCooperativeBlackHole);

  const scenario::DetectionSummary summary = world.detectionSummary();
  ASSERT_FALSE(summary.sessions.empty());
  const SessionRecord& session = summary.sessions.front();
  EXPECT_EQ(session.suspect, world.primaryAttacker()->address());
  EXPECT_EQ(session.accomplice, world.accomplice()->address());

  // Both certificates revoked; both renewal-paused.
  EXPECT_EQ(world.taNetwork().revocations().size(), 2u);
  EXPECT_TRUE(
      world.taNetwork().isRenewalPaused(world.primaryAttacker()->nodeId));
  EXPECT_TRUE(world.taNetwork().isRenewalPaused(world.accomplice()->nodeId));
}

// --------------------------------------------------------------- detector

TEST(DetectorTest, HonestSuspectIsNeverConfirmed) {
  // FP = 0 by construction: an honest node cannot violate AODV under the
  // probe pair, whatever a (mistaken or malicious) reporter claims.
  HighwayScenario world(baseConfig(9, AttackType::kNone));
  world.runFor(sim::Duration::milliseconds(500));
  scenario::VehicleEntity* honest =
      world.findHonestVehicleIn(common::ClusterId{1});
  ASSERT_NE(honest, nullptr);
  world.injectDetectionRequest(world.source(), honest->address(),
                               common::ClusterId{1});
  world.runFor(sim::Duration::seconds(5));

  const scenario::DetectionSummary summary = world.detectionSummary();
  ASSERT_EQ(summary.sessions.size(), 1u);
  EXPECT_EQ(summary.sessions.front().verdict, Verdict::kNotConfirmed);
  EXPECT_FALSE(summary.falsePositive);
  EXPECT_TRUE(world.taNetwork().revocations().empty());
}

TEST(DetectorTest, UnauthenticatedReportIsRejected) {
  HighwayScenario world(baseConfig(10, AttackType::kSingle));
  world.runFor(sim::Duration::milliseconds(500));

  auto dreq = std::make_shared<DetectionRequest>();
  dreq->reporter = world.source().address();
  dreq->reporterCluster = common::ClusterId{1};
  dreq->suspect = world.primaryAttacker()->address();
  dreq->suspectCluster = common::ClusterId{2};
  // No envelope: the CH must refuse to act.
  world.source().node->sendTo(common::Address{101}, dreq);
  world.runFor(sim::Duration::seconds(5));

  EXPECT_EQ(world.rsu(common::ClusterId{1}).detector->stats().dreqRejectedAuth,
            1u);
  EXPECT_TRUE(world.detectionSummary().sessions.empty());
}

TEST(DetectorTest, ConcurrentReportsDeduplicateIntoOneSession) {
  // §III-B1: the verification table absorbs redundant detection requests
  // "when the highway is congested and many nodes wish to verify the same
  // suspect node".
  HighwayScenario world(baseConfig(11, AttackType::kSingle, 1));
  world.runFor(sim::Duration::milliseconds(500));
  const common::Address suspect = world.primaryAttacker()->address();

  int reporters = 0;
  for (auto& vehicle : world.vehicles()) {
    if (reporters == 3) break;
    if (vehicle->isAttacker()) continue;
    if (vehicle->membership->currentCluster() != common::ClusterId{1}) {
      continue;
    }
    world.injectDetectionRequest(*vehicle, suspect, common::ClusterId{1});
    ++reporters;
  }
  ASSERT_EQ(reporters, 3);
  world.runFor(sim::Duration::seconds(5));

  const auto& detector = *world.rsu(common::ClusterId{1}).detector;
  EXPECT_EQ(detector.stats().dreqReceived, 3u);
  EXPECT_EQ(detector.stats().dreqDeduplicated, 2u);
  ASSERT_EQ(detector.completedSessions().size(), 1u);
  EXPECT_EQ(detector.completedSessions().front().verdict,
            Verdict::kSingleBlackHole);
  // One probe pair total, not three.
  EXPECT_EQ(detector.stats().probesSent, 2u);
}

TEST(DetectorTest, CrossClusterReportIsForwarded) {
  HighwayScenario world(baseConfig(12, AttackType::kSingle, 3));
  world.runFor(sim::Duration::milliseconds(500));
  world.injectDetectionRequest(world.source(),
                               world.primaryAttacker()->address(),
                               common::ClusterId{3});
  world.runFor(sim::Duration::seconds(5));

  EXPECT_EQ(world.rsu(common::ClusterId{1}).detector->stats().sessionsForwarded,
            1u);
  EXPECT_EQ(world.rsu(common::ClusterId{3}).detector->stats().sessionsAdopted,
            1u);
  // The session record lives at the CH that completed the detection.
  EXPECT_TRUE(
      world.rsu(common::ClusterId{1}).detector->completedSessions().empty());
  ASSERT_EQ(
      world.rsu(common::ClusterId{3}).detector->completedSessions().size(),
      1u);
}

TEST(DetectorTest, SuspectGoneWithoutTraceIsUnreachable) {
  HighwayScenario world(baseConfig(13, AttackType::kSingle, 2));
  world.runFor(sim::Duration::milliseconds(500));
  // Report a pseudonym no CH has ever seen.
  world.injectDetectionRequest(world.source(), common::Address{987654},
                               common::ClusterId{2});
  world.runFor(sim::Duration::seconds(5));

  const auto& sessions =
      world.rsu(common::ClusterId{2}).detector->completedSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.front().verdict, Verdict::kUnreachable);
}

TEST(DetectorTest, SameClusterDetectionUsesSixPackets) {
  // Fig. 5's headline number, measured through the public API.
  HighwayScenario world(baseConfig(14, AttackType::kSingle, 1));
  world.runFor(sim::Duration::milliseconds(500));
  world.injectDetectionRequest(world.source(),
                               world.primaryAttacker()->address(),
                               common::ClusterId{1});
  world.runFor(sim::Duration::seconds(5));
  const auto& sessions =
      world.rsu(common::ClusterId{1}).detector->completedSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.front().packetsUsed, 6u);
}

TEST(DetectorTest, VerificationTableEmptiesAfterSession) {
  HighwayScenario world(baseConfig(15, AttackType::kSingle, 1));
  world.runFor(sim::Duration::milliseconds(500));
  world.injectDetectionRequest(world.source(),
                               world.primaryAttacker()->address(),
                               common::ClusterId{1});
  world.runFor(sim::Duration::seconds(5));
  EXPECT_EQ(world.rsu(common::ClusterId{1}).detector->activeSessions(), 0u);
}

TEST(DetectorTest, EveryClusterHeadLearnsTheRevocation) {
  HighwayScenario world(baseConfig(16, AttackType::kSingle));
  (void)world.runVerification();
  const auto& revocations = world.taNetwork().revocations();
  ASSERT_EQ(revocations.size(), 1u);
  for (auto& rsu : world.rsus()) {
    EXPECT_TRUE(rsu->head->revocations().isRevokedSerial(
        revocations.front().serial))
        << "cluster " << rsu->cluster.value();
  }
}

}  // namespace
}  // namespace blackdp::core
