// Adversarial-robustness end-to-end tests: probe-evading attackers vs. the
// hardened detector, accusation flooding vs. the reporter-reputation
// defenses, and pins that the new machinery is inert when switched off.
#include <gtest/gtest.h>

#include "scenario/highway_scenario.hpp"

namespace blackdp::scenario {
namespace {

ScenarioConfig adversarialConfig(std::uint64_t seed, AttackType attack) {
  ScenarioConfig config;
  config.seed = seed;
  config.attack = attack;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;  // isolate the probe-evasion axis
  return config;
}

void addFlooders(ScenarioConfig& config, std::uint32_t count) {
  config.accusationFlooders = count;
  config.flooder.start = sim::Duration::seconds(1);
  config.flooder.interval = sim::Duration::milliseconds(300);
  config.flooder.maxAccusations = 10;
}

struct FloodTally {
  std::uint64_t rateLimited{0};
  std::uint64_t replayed{0};
  std::uint64_t exonerations{0};
  std::uint64_t demerits{0};
  std::uint64_t quarantined{0};
};

FloodTally tallyDetectors(HighwayScenario& world) {
  FloodTally t;
  for (const auto& rsu : world.rsus()) {
    const core::DetectorStats& stats = rsu->detector->stats();
    t.rateLimited += stats.dreqRateLimited;
    t.replayed += stats.dreqReplayed;
    t.exonerations += stats.exonerations;
    t.demerits += stats.reporterDemerits;
    t.quarantined += stats.reportersQuarantined;
  }
  return t;
}

// --- probe evasion -------------------------------------------------------

TEST(SelectiveAttackerTest, SitsOutTheFirstDiscovery) {
  HighwayScenario world(adversarialConfig(901, AttackType::kSelective));
  const auto report = world.runVerification();  // single round
  // The cache is cold on the first flood, so the route establishes
  // honestly and nothing is ever suspected.
  EXPECT_EQ(report.outcome, core::Outcome::kRouteVerified);
  // No forgery, no suspicion, no detection session at all: the attack
  // only manifests on a rediscovery (see EvadesTheNaiveDetector).
  EXPECT_TRUE(world.detectionSummary().sessions.empty());
  ASSERT_NE(world.primaryAttacker(), nullptr);
  ASSERT_NE(world.primaryAttacker()->selective, nullptr);
  EXPECT_EQ(world.primaryAttacker()->attacker->attackStats().rrepsForged, 0u);
  EXPECT_GT(world.primaryAttacker()->selective->selectiveStats().probesIgnored,
            0u);
}

TEST(SelectiveAttackerTest, EvadesTheNaiveDetector) {
  HighwayScenario world(adversarialConfig(902, AttackType::kSelective));
  (void)world.runVerification(/*rounds=*/2);
  world.runFor(sim::Duration::seconds(10));

  // The rediscovery IS attacked (cache is hot now)...
  ASSERT_NE(world.primaryAttacker(), nullptr);
  EXPECT_GT(world.primaryAttacker()
                ->attacker->attackStats().rrepsForged,
            0u);
  // ...but the naive fake-destination probe is ignored as never-heard, so
  // the session ends unconfirmed.
  EXPECT_GT(world.primaryAttacker()->selective->selectiveStats().probesIgnored,
            0u);
  const DetectionSummary summary = world.detectionSummary();
  EXPECT_FALSE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
}

TEST(SelectiveAttackerTest, HardenedCampaignCatchesIt) {
  ScenarioConfig config = adversarialConfig(903, AttackType::kSelective);
  config.detector.hardening.enabled = true;
  HighwayScenario world(std::move(config));
  (void)world.runVerification(/*rounds=*/2);
  world.runFor(sim::Duration::seconds(10));

  const DetectionSummary summary = world.detectionSummary();
  EXPECT_TRUE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
  EXPECT_EQ(world.honestRevocations(), 0u);
}

TEST(SelectiveAttackerTest, HardenedCampaignStillCatchesNaiveAttacker) {
  ScenarioConfig config = adversarialConfig(904, AttackType::kSingle);
  config.detector.hardening.enabled = true;
  HighwayScenario world(std::move(config));
  (void)world.runVerification(/*rounds=*/2);
  world.runFor(sim::Duration::seconds(10));

  const DetectionSummary summary = world.detectionSummary();
  EXPECT_TRUE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
}

// --- accusation flooding -------------------------------------------------

TEST(AccusationFloodTest, NeverQuarantinesAnHonestVehicle) {
  for (std::uint64_t seed = 910; seed < 915; ++seed) {
    ScenarioConfig config = adversarialConfig(seed, AttackType::kNone);
    config.detector.hardening.enabled = true;
    addFlooders(config, 2);
    HighwayScenario world(std::move(config));
    (void)world.runVerification();
    world.runFor(sim::Duration::seconds(20));

    EXPECT_EQ(world.honestRevocations(), 0u) << "seed " << seed;
    EXPECT_FALSE(world.detectionSummary().anyConfirmed) << "seed " << seed;
  }
}

TEST(AccusationFloodTest, DefensesEngageAndQuarantineLiars) {
  // Aggregated over a few seeds: every defense layer must demonstrably
  // fire — rate limiting, nonce replay rejection, exoneration/demerits,
  // and at least one flooder quarantined as a systematic liar.
  FloodTally total;
  for (std::uint64_t seed = 920; seed < 925; ++seed) {
    ScenarioConfig config = adversarialConfig(seed, AttackType::kNone);
    config.detector.hardening.enabled = true;
    addFlooders(config, 2);
    HighwayScenario world(std::move(config));
    (void)world.runVerification();
    world.runFor(sim::Duration::seconds(20));

    EXPECT_EQ(world.honestRevocations(), 0u) << "seed " << seed;
    const FloodTally t = tallyDetectors(world);
    total.rateLimited += t.rateLimited;
    total.replayed += t.replayed;
    total.exonerations += t.exonerations;
    total.demerits += t.demerits;
    total.quarantined += t.quarantined;
  }
  EXPECT_GT(total.rateLimited, 0u);
  EXPECT_GT(total.replayed, 0u);
  EXPECT_GT(total.exonerations, 0u);
  EXPECT_GT(total.demerits, 0u);
  EXPECT_GT(total.quarantined, 0u);
}

TEST(AccusationFloodTest, RealAttackerStillDetectedThroughTheNoise) {
  ScenarioConfig config = adversarialConfig(930, AttackType::kSingle);
  config.detector.hardening.enabled = true;
  addFlooders(config, 2);
  HighwayScenario world(std::move(config));
  (void)world.runVerification(/*rounds=*/2);
  world.runFor(sim::Duration::seconds(20));

  const DetectionSummary summary = world.detectionSummary();
  EXPECT_TRUE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
  EXPECT_EQ(world.honestRevocations(), 0u);
}

// --- default-off pins ----------------------------------------------------

// The adversarial knobs ship disabled; a seed-style scenario with the knobs
// explicitly at their defaults must replay byte-identically to one that
// never mentions them.
TEST(DefaultOffPinTest, ExplicitDefaultsReplayByteIdentically) {
  ScenarioConfig plain;
  plain.seed = 941;
  plain.attack = AttackType::kSingle;
  plain.attackerCluster = common::ClusterId{2};
  plain.evasion.firstEvasiveCluster = 99;

  ScenarioConfig pinned = plain;
  pinned.detector.hardening = core::DetectorHardening{};
  pinned.accusationFlooders = 0;
  pinned.detector.recordProbeIdentities = false;
  ASSERT_FALSE(pinned.detector.hardening.enabled);

  HighwayScenario a(plain);
  HighwayScenario b(std::move(pinned));
  (void)a.runVerification();
  (void)b.runVerification();

  EXPECT_EQ(a.medium().stats().framesDelivered,
            b.medium().stats().framesDelivered);
  EXPECT_EQ(a.medium().stats().framesSent, b.medium().stats().framesSent);
  std::uint64_t probesA = 0, probesB = 0;
  for (const auto& rsu : a.rsus()) probesA += rsu->detector->stats().probesSent;
  for (const auto& rsu : b.rsus()) probesB += rsu->detector->stats().probesSent;
  EXPECT_EQ(probesA, probesB);
  EXPECT_EQ(a.detectionSummary().sessions.size(),
            b.detectionSummary().sessions.size());
}

// Hardening ON must not create false accusations in the paper's own
// scenarios: sweep seed trials of the fig-4 shape (single + cooperative,
// early clusters) and require zero honest revocations and zero FPs.
TEST(DefaultOffPinTest, HardeningAddsNoFalsePositivesInSeedScenarios) {
  const AttackType kinds[] = {AttackType::kSingle, AttackType::kCooperative};
  for (const AttackType attack : kinds) {
    for (std::uint64_t seed = 950; seed < 953; ++seed) {
      ScenarioConfig config = adversarialConfig(seed, attack);
      config.detector.hardening.enabled = true;
      HighwayScenario world(std::move(config));
      (void)world.runVerification();
      world.runFor(sim::Duration::seconds(5));

      const DetectionSummary summary = world.detectionSummary();
      EXPECT_TRUE(summary.confirmedOnAttacker)
          << "seed " << seed << " attack " << static_cast<int>(attack);
      EXPECT_FALSE(summary.falsePositive) << "seed " << seed;
      EXPECT_EQ(world.honestRevocations(), 0u) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace blackdp::scenario
