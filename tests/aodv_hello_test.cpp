// RFC 3561 §6.9 HELLO link maintenance: beaconing, neighbour liveness,
// expiry-driven route invalidation.
#include <gtest/gtest.h>

#include <memory>

#include "aodv/agent.hpp"
#include "net/node.hpp"

namespace blackdp::aodv {
namespace {

net::MediumConfig quietMedium() {
  net::MediumConfig c;
  c.maxJitter = sim::Duration{};
  return c;
}

AodvConfig helloConfig() {
  AodvConfig c;
  c.helloInterval = sim::Duration::milliseconds(500);
  c.allowedHelloLoss = 2;
  return c;
}

class HelloRig {
 public:
  explicit HelloRig(std::size_t count, double spacing = 800.0)
      : medium_{simulator_, sim::Rng{7}, quietMedium()} {
    for (std::size_t i = 0; i < count; ++i) {
      auto node = std::make_unique<net::BasicNode>(
          simulator_, medium_,
          common::NodeId{static_cast<std::uint32_t>(i + 1)},
          mobility::LinearMotion::stationary(
              {spacing * static_cast<double>(i), 0.0}));
      node->setLocalAddress(common::Address{100 + i});
      auto agent =
          std::make_unique<AodvAgent>(simulator_, *node, helloConfig());
      agent->startHello();
      nodes_.push_back(std::move(node));
      agents_.push_back(std::move(agent));
    }
  }

  [[nodiscard]] AodvAgent& agent(std::size_t i) { return *agents_[i]; }
  [[nodiscard]] net::BasicNode& node(std::size_t i) { return *nodes_[i]; }
  void runFor(sim::Duration d) { simulator_.run(simulator_.now() + d); }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

 private:
  sim::Simulator simulator_;
  net::WirelessMedium medium_;
  std::vector<std::unique_ptr<net::BasicNode>> nodes_;
  std::vector<std::unique_ptr<AodvAgent>> agents_;
};

TEST(HelloTest, DisabledByDefault) {
  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{1}, quietMedium()};
  net::BasicNode node{simulator, medium, common::NodeId{1},
                      mobility::LinearMotion::stationary({0.0, 0.0})};
  node.setLocalAddress(common::Address{1});
  AodvAgent agent{simulator, node};  // default config: no hello
  agent.startHello();
  simulator.run(simulator.now() + sim::Duration::seconds(5));
  EXPECT_EQ(agent.stats().hellosSent, 0u);
}

TEST(HelloTest, BeaconsPeriodically) {
  HelloRig rig{1};
  rig.runFor(sim::Duration::milliseconds(2'600));
  // t = 0, 500, 1000, 1500, 2000, 2500 → 6 beacons.
  EXPECT_EQ(rig.agent(0).stats().hellosSent, 6u);
}

TEST(HelloTest, NeighboursDiscoverEachOther) {
  HelloRig rig{3};
  rig.runFor(sim::Duration::seconds(2));
  EXPECT_TRUE(rig.agent(0).isNeighbourAlive(common::Address{101}));
  EXPECT_TRUE(rig.agent(1).isNeighbourAlive(common::Address{100}));
  EXPECT_TRUE(rig.agent(1).isNeighbourAlive(common::Address{102}));
  // 0 and 2 are 1600 m apart: not neighbours.
  EXPECT_FALSE(rig.agent(0).isNeighbourAlive(common::Address{102}));
}

TEST(HelloTest, HelloInstallsOneHopRoute) {
  HelloRig rig{2};
  rig.runFor(sim::Duration::seconds(1));
  const auto route = rig.agent(0).routingTable().activeRoute(
      common::Address{101}, rig.simulator().now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nextHop, common::Address{101});
  EXPECT_EQ(route->hopCount, 1);
}

TEST(HelloTest, SilentNeighbourExpiresAndRoutesDie) {
  HelloRig rig{2};
  rig.runFor(sim::Duration::seconds(2));
  ASSERT_TRUE(rig.agent(0).isNeighbourAlive(common::Address{101}));

  rig.node(1).detachFromMedium();  // vanishes silently
  rig.runFor(sim::Duration::seconds(3));  // > allowedHelloLoss * interval
  EXPECT_FALSE(rig.agent(0).isNeighbourAlive(common::Address{101}));
  EXPECT_GE(rig.agent(0).stats().neighboursExpired, 1u);
  EXPECT_FALSE(rig.agent(0)
                   .routingTable()
                   .activeRoute(common::Address{101}, rig.simulator().now())
                   .has_value());
}

TEST(HelloTest, AnyTrafficRefreshesLiveness) {
  HelloRig rig{2};
  rig.runFor(sim::Duration::seconds(1));
  // Even without its beacons, a chatty neighbour stays alive.
  for (int i = 0; i < 10; ++i) {
    auto rreq = std::make_shared<RouteRequest>();
    rreq->rreqId = common::RreqId{static_cast<std::uint32_t>(100 + i)};
    rreq->origin = common::Address{101};
    rreq->destination = common::Address{999};
    rreq->ttl = 1;
    rig.node(1).broadcast(rreq);
    rig.runFor(sim::Duration::milliseconds(200));
  }
  EXPECT_TRUE(rig.agent(0).isNeighbourAlive(common::Address{101}));
}

TEST(HelloTest, StartHelloIsIdempotent) {
  HelloRig rig{1};
  rig.agent(0).startHello();  // second call must not double the beacons
  rig.runFor(sim::Duration::milliseconds(1'100));
  EXPECT_EQ(rig.agent(0).stats().hellosSent, 3u);  // t=0, 500, 1000
}

TEST(HelloTest, NeighbourCountTracksTopology) {
  HelloRig rig{4, 600.0};  // 0-600-1200-1800: each inner node has 2
  rig.runFor(sim::Duration::seconds(2));
  EXPECT_EQ(rig.agent(0).neighbourCount(), 1u);
  EXPECT_EQ(rig.agent(1).neighbourCount(), 2u);
  EXPECT_EQ(rig.agent(2).neighbourCount(), 2u);
  EXPECT_EQ(rig.agent(3).neighbourCount(), 1u);
}

}  // namespace
}  // namespace blackdp::aodv
