// Experiment runners: small-scale checks of the Fig. 4 / Fig. 5 / ablation
// machinery that the benches run at paper scale.
#include <gtest/gtest.h>

#include "baselines/rrep_detectors.hpp"
#include "scenario/experiments.hpp"

namespace blackdp::scenario {
namespace {

TEST(Fig4Test, NonEvasiveClustersDetectPerfectly) {
  const Fig4Cell cell =
      runFig4Cell(AttackType::kSingle, common::ClusterId{2}, 8, 101);
  EXPECT_EQ(cell.detected, cell.trials);
  EXPECT_EQ(cell.falsePositives, 0u);
  EXPECT_DOUBLE_EQ(cell.detectionAccuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cell.falseNegativeRate(), 0.0);
}

TEST(Fig4Test, CooperativeAlsoDetectsPerfectlyEarly) {
  const Fig4Cell cell =
      runFig4Cell(AttackType::kCooperative, common::ClusterId{5}, 6, 102);
  EXPECT_EQ(cell.detected, cell.trials);
  EXPECT_EQ(cell.falsePositives, 0u);
}

TEST(Fig4Test, RatesSumConsistently) {
  const Fig4Cell cell =
      runFig4Cell(AttackType::kSingle, common::ClusterId{9}, 10, 103);
  EXPECT_DOUBLE_EQ(cell.detectionAccuracy() + cell.falseNegativeRate(), 1.0);
  EXPECT_EQ(cell.detected + cell.prevented, cell.trials);
}

TEST(Fig4Test, LastClusterDegradesButNeverFalsePositives) {
  const Fig4Cell cell =
      runFig4Cell(AttackType::kSingle, common::ClusterId{10}, 20, 104);
  EXPECT_LT(cell.detected, cell.trials);  // evasion bites in cluster 10
  EXPECT_EQ(cell.falsePositives, 0u);
}

TEST(Fig5Test, PacketCountsMatchPaperScenarios) {
  struct Expectation {
    std::size_t index;
    std::uint32_t packets;
  };
  const std::vector<Fig5Case> cases = fig5Cases();
  // Paper: no attacker 4 (same) / 6 (cross); single 6 / 8(flee) / 8 / 9;
  // cooperative +2.
  const std::vector<Expectation> expectations{
      {0, 4},  {1, 6},  {2, 6},  {3, 8},  {4, 8},
      {5, 9},  {6, 8},  {8, 10}, {9, 11},
  };
  for (const Expectation& e : expectations) {
    const Fig5Result result = runFig5Case(cases[e.index], 11);
    EXPECT_EQ(result.detectionPackets, e.packets) << cases[e.index].label;
  }
}

TEST(Fig5Test, VerdictsMatchAttackTypes) {
  const std::vector<Fig5Case> cases = fig5Cases();
  EXPECT_EQ(runFig5Case(cases[0], 11).verdict, core::Verdict::kNotConfirmed);
  EXPECT_EQ(runFig5Case(cases[2], 11).verdict,
            core::Verdict::kSingleBlackHole);
  EXPECT_EQ(runFig5Case(cases[6], 11).verdict,
            core::Verdict::kCooperativeBlackHole);
}

TEST(Fig5Test, CaseListCoversPaperTreatments) {
  const std::vector<Fig5Case> cases = fig5Cases();
  ASSERT_EQ(cases.size(), 10u);
  int none = 0;
  int single = 0;
  int coop = 0;
  for (const Fig5Case& c : cases) {
    switch (c.attack) {
      case AttackType::kNone: ++none; break;
      case AttackType::kSingle: ++single; break;
      case AttackType::kCooperative: ++coop; break;
      case AttackType::kSelective: break;  // not part of the paper's Fig. 5
    }
  }
  EXPECT_EQ(none, 2);
  EXPECT_EQ(single, 4);
  EXPECT_EQ(coop, 4);
}

TEST(BaselineComparisonTest, BlackDpDominatesWithZeroFp) {
  const std::vector<BaselineCell> cells = runBaselineComparison(5, 55);
  ASSERT_FALSE(cells.empty());
  double blackdpWorst = 1.0;
  for (const BaselineCell& cell : cells) {
    if (cell.detector == "blackdp") {
      EXPECT_EQ(cell.matrix.fp(), 0u);
      blackdpWorst = std::min(blackdpWorst, cell.matrix.recall());
    }
  }
  EXPECT_DOUBLE_EQ(blackdpWorst, 1.0);  // cluster 2: no evasion possible
}

TEST(BaselineComparisonTest, BaselinesNeverExposeTheAccomplice) {
  // §V-A: source-side SN methods at best flag the replying primary; the
  // vouching teammate never sends an outlier RREP to the source, so only
  // BlackDP's RSU-side next-hop probing can expose it. Measured directly:
  // across cooperative trials, run every baseline over the captured RREPs
  // and check the accomplice is never among the flagged addresses.
  for (std::uint32_t trial = 0; trial < 5; ++trial) {
    ScenarioConfig config;
    config.seed = 5600 + trial;
    config.attack = AttackType::kCooperative;
    config.attackerCluster = common::ClusterId{2};
    HighwayScenario world(config);
    world.runFor(sim::Duration::milliseconds(500));

    std::vector<aodv::RouteReply> rreps;
    world.source().agent->setRrepObserver(
        [&rreps](const aodv::RouteReply& rrep, const net::Frame&) {
          rreps.push_back(rrep);
        });
    bool done = false;
    world.source().agent->findRoute(world.destination().address(),
                                    [&done](bool) { done = true; });
    world.runUntil([&] { return done; }, sim::Duration::seconds(10));

    baselines::FirstRrepComparisonDetector jaiswal;
    baselines::PeakThresholdDetector peak;
    baselines::StaticThresholdDetector tanSmall(
        baselines::Environment::kSmall);
    const common::Address accomplice = world.accomplice()->address();
    for (baselines::RrepDetector* detector :
         std::initializer_list<baselines::RrepDetector*>{&jaiswal, &peak,
                                                         &tanSmall}) {
      for (const common::Address& flagged : detector->classify(rreps)) {
        EXPECT_NE(flagged, accomplice) << detector->name();
      }
    }
  }
}

TEST(BaselineComparisonTest, MediumThresholdMissesAdaptiveForgery) {
  const std::vector<BaselineCell> cells = runBaselineComparison(5, 57);
  for (const BaselineCell& cell : cells) {
    if (cell.detector == "static-threshold-medium") {
      EXPECT_EQ(cell.matrix.tp(), 0u);  // forged +200 slips under 500
    }
    if (cell.detector == "static-threshold-small") {
      EXPECT_GE(cell.matrix.recall(), 0.8);  // 100-threshold catches it
    }
  }
}

}  // namespace
}  // namespace blackdp::scenario
