// Fault-injection subsystem: plan replay on the simulator clock, jam zones,
// Gilbert–Elliott bursts, backbone link windows, RSU crash/recovery, the
// protocol-hardening fallbacks, and the seed-determinism guarantee.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster_head.hpp"
#include "cluster/membership_client.hpp"
#include "fault/fault_injector.hpp"
#include "scenario/highway_scenario.hpp"

namespace blackdp {
namespace {

class Ping final : public net::Payload {
 public:
  [[nodiscard]] std::string_view typeName() const override { return "ping"; }
};

// ------------------------------------------------------------- plan algebra

TEST(FaultPlanTest, GilbertElliottMeanLoss) {
  fault::GilbertElliott iid{0.0, 0.25, 0.3, 0.9};
  EXPECT_DOUBLE_EQ(iid.meanLoss(), 0.3);  // never leaves the good state

  fault::GilbertElliott symmetric{0.25, 0.25, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(symmetric.meanLoss(), 0.5);

  EXPECT_TRUE(fault::FaultPlan{}.empty());
  fault::FaultPlan plan;
  plan.jamZones.push_back({});
  EXPECT_FALSE(plan.empty());
}

// ------------------------------------------------------- injector mechanics

TEST(FaultInjectorTest, JamZoneDropsByPositionAndWindow) {
  sim::Simulator simulator;
  fault::FaultPlan plan;
  fault::JamZoneEvent jam;
  jam.xMin = 100.0;
  jam.xMax = 200.0;
  jam.from = sim::TimePoint::fromUs(1'000'000);
  jam.until = sim::TimePoint::fromUs(2'000'000);
  plan.jamZones.push_back(jam);
  fault::FaultInjector injector{simulator, sim::Rng{1}, std::move(plan)};

  const auto drop = [&](double senderX, double receiverX) {
    const obs::DropCause cause = injector.dropDelivery(
        common::NodeId{1}, common::NodeId{2}, {senderX, 0.0},
        {receiverX, 0.0});
    EXPECT_TRUE(cause == obs::DropCause::kNone ||
                cause == obs::DropCause::kJam);
    return cause != obs::DropCause::kNone;
  };

  bool before = true, senderIn = false, receiverIn = false, outside = true,
       after = true;
  simulator.scheduleAt(sim::TimePoint::fromUs(500'000),
                       [&] { before = drop(150.0, 150.0); });
  simulator.scheduleAt(sim::TimePoint::fromUs(1'500'000), [&] {
    senderIn = drop(150.0, 900.0);
    receiverIn = drop(900.0, 150.0);
    outside = drop(900.0, 950.0);
  });
  // [from, until): at `until` exactly the zone is clear again.
  simulator.scheduleAt(sim::TimePoint::fromUs(2'000'000),
                       [&] { after = drop(150.0, 150.0); });
  simulator.run();

  EXPECT_FALSE(before);
  EXPECT_TRUE(senderIn);
  EXPECT_TRUE(receiverIn);
  EXPECT_FALSE(outside);
  EXPECT_FALSE(after);
  EXPECT_EQ(injector.stats().framesJammed, 2u);
}

TEST(FaultInjectorTest, BurstChainAdvancesTransitionThenDraw) {
  // pGoodToBad = pBadToGood = 1 makes the chain flip every delivery; with
  // lossGood = 0 and lossBad = 1 the drops alternate deterministically,
  // starting in bad (the chain transitions before it draws).
  sim::Simulator simulator;
  fault::FaultPlan plan;
  fault::BurstLossEvent burst;
  burst.channel = fault::GilbertElliott{1.0, 1.0, 0.0, 1.0};
  plan.burstLoss.push_back(burst);
  fault::FaultInjector injector{simulator, sim::Rng{1}, std::move(plan)};

  std::vector<bool> outcomes;
  for (int i = 0; i < 6; ++i) {
    const obs::DropCause cause = injector.dropDelivery(
        common::NodeId{1}, common::NodeId{2}, {0.0, 0.0}, {10.0, 0.0});
    EXPECT_TRUE(cause == obs::DropCause::kNone ||
                cause == obs::DropCause::kBurstLoss);
    outcomes.push_back(cause != obs::DropCause::kNone);
  }
  EXPECT_EQ(outcomes, (std::vector<bool>{true, false, true, false, true,
                                         false}));
  EXPECT_EQ(injector.stats().framesBurstLost, 3u);
}

TEST(FaultInjectorTest, BackboneLinkAndPartitionWindows) {
  sim::Simulator simulator;
  fault::FaultPlan plan;
  fault::BackboneLinkDownEvent cut;
  cut.a = common::ClusterId{2};
  cut.b = common::ClusterId{3};
  cut.from = sim::TimePoint::fromUs(1'000'000);
  cut.until = sim::TimePoint::fromUs(2'000'000);
  plan.backboneLinksDown.push_back(cut);
  fault::BackbonePartitionEvent split;
  split.boundary = common::ClusterId{5};
  split.from = sim::TimePoint::fromUs(3'000'000);
  split.until = sim::TimePoint::fromUs(4'000'000);
  plan.backbonePartitions.push_back(split);
  fault::FaultInjector injector{simulator, sim::Rng{1}, std::move(plan)};

  const auto up = [&](std::uint32_t from, std::uint32_t to) {
    return injector.linkUp(common::ClusterId{from}, common::ClusterId{to});
  };

  EXPECT_TRUE(up(2, 3));  // t = 0: before the cut
  simulator.scheduleAt(sim::TimePoint::fromUs(1'500'000), [&] {
    EXPECT_FALSE(up(2, 3));
    EXPECT_FALSE(up(3, 2));  // cuts are bidirectional
    EXPECT_TRUE(up(2, 4));
  });
  simulator.scheduleAt(sim::TimePoint::fromUs(2'000'000),
                       [&] { EXPECT_TRUE(up(2, 3)); });
  simulator.scheduleAt(sim::TimePoint::fromUs(3'500'000), [&] {
    EXPECT_FALSE(up(5, 6));  // severed across the boundary, both ways
    EXPECT_FALSE(up(6, 5));
    EXPECT_TRUE(up(1, 5));  // same side
    EXPECT_TRUE(up(6, 7));
  });
  simulator.run();
}

// ------------------------------------------------- cluster-level fault play

/// Table-I highway with all cluster heads registered with a fault injector.
class FaultWorld {
 public:
  explicit FaultWorld(fault::FaultPlan plan)
      : highway_{10'000.0, 200.0, 1'000.0},
        medium_{simulator_, sim::Rng{3}, mediumConfig()},
        backbone_{simulator_},
        injector_{simulator_, sim::Rng{99}, std::move(plan)} {
    injector_.install(medium_, backbone_);
    for (std::uint32_t c = 1; c <= highway_.clusterCount(); ++c) {
      auto node = std::make_unique<net::BasicNode>(
          simulator_, medium_, common::NodeId{1000 + c},
          mobility::LinearMotion::stationary(
              highway_.clusterCenter(common::ClusterId{c})));
      node->setLocalAddress(common::Address{100 + c});
      heads_.push_back(std::make_unique<cluster::ClusterHead>(
          simulator_, *node, backbone_, highway_, common::ClusterId{c}));
      injector_.registerRsu(common::ClusterId{c}, *heads_.back());
      headNodes_.push_back(std::move(node));
    }
  }

  struct Vehicle {
    std::unique_ptr<net::BasicNode> node;
    std::unique_ptr<cluster::MembershipClient> membership;
  };

  Vehicle makeVehicle(std::uint32_t id, double x) {
    Vehicle v;
    v.node = std::make_unique<net::BasicNode>(
        simulator_, medium_, common::NodeId{id},
        mobility::LinearMotion::stationary({x, 100.0}));
    v.node->setLocalAddress(common::Address{id});
    v.membership = std::make_unique<cluster::MembershipClient>(
        simulator_, *v.node, highway_);
    return v;
  }

  [[nodiscard]] cluster::ClusterHead& head(std::uint32_t c) {
    return *heads_[c - 1];
  }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::WirelessMedium& medium() { return medium_; }
  [[nodiscard]] net::Backbone& backbone() { return backbone_; }
  [[nodiscard]] fault::FaultInjector& injector() { return injector_; }

  void runFor(sim::Duration d) { simulator_.run(simulator_.now() + d); }

 private:
  static net::MediumConfig mediumConfig() {
    net::MediumConfig c;
    c.maxJitter = sim::Duration{};
    return c;
  }

  sim::Simulator simulator_;
  mobility::Highway highway_;
  net::WirelessMedium medium_;
  net::Backbone backbone_;
  fault::FaultInjector injector_;
  std::vector<std::unique_ptr<net::BasicNode>> headNodes_;
  std::vector<std::unique_ptr<cluster::ClusterHead>> heads_;
};

TEST(FaultWorldTest, RsuCrashAndRecoveryFollowPlan) {
  fault::FaultPlan plan;
  fault::RsuCrashEvent crash;
  crash.cluster = common::ClusterId{3};
  crash.at = sim::TimePoint::fromUs(1'000'000);
  crash.recoverAt = sim::TimePoint::fromUs(2'000'000);
  plan.rsuCrashes.push_back(crash);
  FaultWorld world{std::move(plan)};

  auto v = world.makeVehicle(1, 2'500.0);
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  ASSERT_TRUE(world.head(3).isMember(common::Address{1}));

  world.runFor(sim::Duration::milliseconds(1'490));  // t = 1.5 s
  EXPECT_TRUE(world.head(3).isCrashed());
  EXPECT_EQ(world.head(3).stats().crashes, 1u);
  EXPECT_EQ(world.injector().stats().rsuCrashes, 1u);
  // Soft state is lost: members move to the history table, the RSU is off
  // the air and off the backbone.
  EXPECT_FALSE(world.head(3).isMember(common::Address{1}));
  EXPECT_TRUE(world.head(3).isFormerMember(common::Address{1}));
  EXPECT_FALSE(world.medium().isAttached(common::NodeId{1003}));
  EXPECT_FALSE(world.backbone().isAttached(common::ClusterId{3}));

  // A unicast to the dead CH now fails at the MAC.
  int failures = 0;
  v.node->addFailureHandler([&](const net::Frame&) { ++failures; });
  v.node->sendTo(common::Address{103}, net::makePayload<Ping>());
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_EQ(failures, 1);

  world.runFor(sim::Duration::milliseconds(1'000));  // t = 2.5 s
  EXPECT_FALSE(world.head(3).isCrashed());
  EXPECT_EQ(world.head(3).stats().recoveries, 1u);
  EXPECT_EQ(world.injector().stats().rsuRecoveries, 1u);
  EXPECT_TRUE(world.medium().isAttached(common::NodeId{1003}));
  EXPECT_TRUE(world.backbone().isAttached(common::ClusterId{3}));

  // Back in business: a fresh join is accepted.
  auto v2 = world.makeVehicle(2, 2'600.0);
  v2.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  EXPECT_TRUE(world.head(3).isMember(common::Address{2}));
}

TEST(FaultWorldTest, ChFailoverRehomesToAdvertisedNeighbor) {
  fault::FaultPlan plan;
  fault::RsuCrashEvent crash;
  crash.cluster = common::ClusterId{3};
  crash.at = sim::TimePoint::fromUs(1'000'000);
  plan.rsuCrashes.push_back(crash);
  FaultWorld world{std::move(plan)};
  world.head(3).setNeighborAnnouncement(
      {{common::ClusterId{4}, common::Address{104}},
       {common::ClusterId{2}, common::Address{102}}});

  auto v = world.makeVehicle(1, 2'500.0);
  v.membership->start();
  world.runFor(sim::Duration::milliseconds(10));
  ASSERT_EQ(v.membership->clusterHeadAddress(), common::Address{103});
  ASSERT_EQ(v.membership->fallbackHeads().size(), 2u);

  world.runFor(sim::Duration::milliseconds(1'490));  // CH 3 is down
  v.node->sendTo(common::Address{103}, net::makePayload<Ping>());
  world.runFor(sim::Duration::milliseconds(10));

  EXPECT_EQ(v.membership->stats().chFailovers, 1u);
  EXPECT_EQ(v.membership->clusterHeadAddress(), common::Address{104});
  EXPECT_EQ(v.membership->currentCluster(), common::ClusterId{4});
  // The consumed candidate is gone; the second one remains.
  EXPECT_EQ(v.membership->fallbackHeads().size(), 1u);
}

// ------------------------------------------------------ full-scenario wires

TEST(FaultScenarioTest, EmptyPlanInstallsNoFaultLayer) {
  scenario::ScenarioConfig config;
  config.seed = 41;
  config.attack = scenario::AttackType::kNone;
  scenario::HighwayScenario world(config);
  EXPECT_EQ(world.faultInjector(), nullptr);
}

TEST(FaultScenarioTest, InertPlanLeavesTrafficIdentical) {
  // An installed injector whose events never fire inside the run window must
  // not perturb a single RNG stream: the traffic counters match an
  // injector-free run exactly.
  scenario::ScenarioConfig base;
  base.seed = 42;
  base.attack = scenario::AttackType::kNone;

  scenario::ScenarioConfig faulted = base;
  fault::RsuCrashEvent lateCrash;
  lateCrash.cluster = common::ClusterId{9};
  lateCrash.at = sim::TimePoint::fromUs(1'000'000'000);  // beyond the window
  faulted.faults.rsuCrashes.push_back(lateCrash);

  scenario::HighwayScenario plain(base);
  scenario::HighwayScenario withInjector(faulted);
  ASSERT_EQ(plain.faultInjector(), nullptr);
  ASSERT_NE(withInjector.faultInjector(), nullptr);
  plain.runFor(sim::Duration::seconds(2));
  withInjector.runFor(sim::Duration::seconds(2));

  const auto& a = plain.medium().stats();
  const auto& b = withInjector.medium().stats();
  EXPECT_EQ(a.framesSent, b.framesSent);
  EXPECT_EQ(a.framesDelivered, b.framesDelivered);
  EXPECT_EQ(a.framesLost, b.framesLost);
  EXPECT_EQ(a.bytesSent, b.bytesSent);
  EXPECT_EQ(b.framesFaultDropped, 0u);
  EXPECT_EQ(plain.backbone().stats().messagesSent,
            withInjector.backbone().stats().messagesSent);
}

TEST(FaultScenarioTest, DeterministicReplayUnderFaults) {
  scenario::ScenarioConfig config;
  config.seed = 43;
  config.attack = scenario::AttackType::kNone;
  fault::BurstLossEvent burst;
  burst.channel = fault::GilbertElliott{0.05, 0.2, 0.0, 0.8};
  config.faults.burstLoss.push_back(burst);
  fault::RsuCrashEvent crash;
  crash.cluster = common::ClusterId{3};
  crash.at = sim::TimePoint::fromUs(1'000'000);
  crash.recoverAt = sim::TimePoint::fromUs(2'000'000);
  config.faults.rsuCrashes.push_back(crash);
  fault::JamZoneEvent jam;
  jam.xMin = 1'200.0;
  jam.xMax = 1'800.0;
  jam.from = sim::TimePoint::fromUs(500'000);
  jam.until = sim::TimePoint::fromUs(1'500'000);
  config.faults.jamZones.push_back(jam);

  scenario::HighwayScenario first(config);
  scenario::HighwayScenario second(config);
  first.runFor(sim::Duration::seconds(3));
  second.runFor(sim::Duration::seconds(3));

  const auto& ma = first.medium().stats();
  const auto& mb = second.medium().stats();
  EXPECT_GT(ma.framesFaultDropped, 0u);
  EXPECT_EQ(ma.framesSent, mb.framesSent);
  EXPECT_EQ(ma.framesDelivered, mb.framesDelivered);
  EXPECT_EQ(ma.framesLost, mb.framesLost);
  EXPECT_EQ(ma.framesFaultDropped, mb.framesFaultDropped);
  EXPECT_EQ(ma.sendFailures, mb.sendFailures);
  EXPECT_EQ(ma.bytesSent, mb.bytesSent);

  const auto& ba = first.backbone().stats();
  const auto& bb = second.backbone().stats();
  EXPECT_EQ(ba.messagesSent, bb.messagesSent);
  EXPECT_EQ(ba.bytesSent, bb.bytesSent);
  EXPECT_EQ(ba.messagesDropped, bb.messagesDropped);
  EXPECT_EQ(ba.linkBlocked, bb.linkBlocked);

  const auto& fa = first.faultInjector()->stats();
  const auto& fb = second.faultInjector()->stats();
  EXPECT_EQ(fa.rsuCrashes, fb.rsuCrashes);
  EXPECT_EQ(fa.rsuRecoveries, fb.rsuRecoveries);
  EXPECT_EQ(fa.framesJammed, fb.framesJammed);
  EXPECT_EQ(fa.framesBurstLost, fb.framesBurstLost);
}

TEST(FaultScenarioTest, LocalQuarantineWhenNoChReachable) {
  // Every RSU dark from the start: the verifier cannot report to any CH and
  // degrades to a local blacklist decision instead of giving up.
  scenario::ScenarioConfig config;
  config.seed = 44;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;
  config.verifier.localQuarantine = true;
  for (std::uint32_t c = 1; c <= 10; ++c) {
    fault::RsuCrashEvent crash;
    crash.cluster = common::ClusterId{c};
    crash.at = sim::TimePoint{};
    config.faults.rsuCrashes.push_back(crash);
  }

  scenario::HighwayScenario world(config);
  const auto report = world.runVerification();

  EXPECT_EQ(report.outcome, core::Outcome::kLocallyQuarantined);
  EXPECT_TRUE(report.reported);
  EXPECT_TRUE(world.isAttackerPseudonym(report.suspect));
  EXPECT_TRUE(world.source().membership->isBlacklisted(report.suspect));
  EXPECT_GE(world.source().membership->stats().localBlacklists, 1u);
}

TEST(FaultScenarioTest, ForwardFailureReadoptsSessionLocally) {
  // The suspect's home CH is dead, so CH 1's backbone forward bounces; the
  // detector re-adopts the session and finishes it from here instead of
  // silently losing the report.
  scenario::ScenarioConfig config;
  config.seed = 45;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;
  fault::RsuCrashEvent crash;
  crash.cluster = common::ClusterId{2};
  crash.at = sim::TimePoint::fromUs(200'000);  // after the joins settle
  config.faults.rsuCrashes.push_back(crash);

  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));
  auto* reporter = world.findHonestVehicleIn(common::ClusterId{1});
  ASSERT_NE(reporter, nullptr);
  world.injectDetectionRequest(*reporter, world.primaryAttacker()->address(),
                               common::ClusterId{2});
  world.runFor(sim::Duration::seconds(3));

  const auto& stats = world.rsu(common::ClusterId{1}).detector->stats();
  EXPECT_EQ(stats.sessionsForwarded, 1u);
  EXPECT_EQ(stats.forwardsFailed, 1u);
  // The re-adopted session runs to a verdict on CH 1 (over-the-air probes;
  // silence or replies both conclude it) instead of leaking.
  EXPECT_EQ(world.rsu(common::ClusterId{1}).detector->activeSessions(), 0u);
  EXPECT_FALSE(
      world.rsu(common::ClusterId{1}).detector->completedSessions().empty());
}

}  // namespace
}  // namespace blackdp
