#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "net/backbone.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"

namespace blackdp::net {
namespace {

class Ping final : public Payload {
 public:
  explicit Ping(int value = 0) : value_{value} {}
  [[nodiscard]] std::string_view typeName() const override { return "ping"; }
  [[nodiscard]] int value() const { return value_; }

 private:
  int value_;
};

class Pong final : public Payload {
 public:
  [[nodiscard]] std::string_view typeName() const override { return "pong"; }
};

/// Test radio pinned to a position, recording every frame.
class FixedRadio final : public Radio {
 public:
  explicit FixedRadio(mobility::Position where) : where_{where} {}
  [[nodiscard]] mobility::Position radioPosition() const override {
    return where_;
  }
  void onFrame(const Frame& frame) override { frames.push_back(frame); }

  mobility::Position where_;
  std::vector<Frame> frames;
};

// ----------------------------------------------------------------- payload

TEST(PayloadTest, DowncastMatchesType) {
  const PayloadPtr p = makePayload<Ping>(7);
  ASSERT_NE(payloadAs<Ping>(p), nullptr);
  EXPECT_EQ(payloadAs<Ping>(p)->value(), 7);
  EXPECT_EQ(payloadAs<Pong>(p), nullptr);
}

TEST(FrameTest, BroadcastDetection) {
  Frame f{common::Address{1}, common::kBroadcastAddress, makePayload<Ping>()};
  EXPECT_TRUE(f.isBroadcast());
  f.dst = common::Address{2};
  EXPECT_FALSE(f.isBroadcast());
}

// ------------------------------------------------------------------ medium

MediumConfig deterministicMediumConfig() {
  MediumConfig c;
  c.transmissionRangeM = 1000.0;
  c.maxJitter = sim::Duration{};  // deterministic delivery time
  return c;
}

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_{simulator_, sim::Rng{1}, deterministicMediumConfig()} {}

  static MediumConfig config() { return deterministicMediumConfig(); }

  sim::Simulator simulator_;
  WirelessMedium medium_;
};

TEST_F(MediumTest, DeliversWithinRange) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{999.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  simulator_.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(a.frames.empty());  // no self-delivery
}

TEST_F(MediumTest, DropsBeyondRange) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{1000.5, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  simulator_.run();
  EXPECT_TRUE(b.frames.empty());
}

TEST_F(MediumTest, RangeIsInclusive) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{1000.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  simulator_.run();
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST_F(MediumTest, EveryInRangeNodeHearsBroadcast) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{100.0, 0.0}};
  FixedRadio c{{200.0, 0.0}};
  FixedRadio d{{5000.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.attach(common::NodeId{3}, c);
  medium_.attach(common::NodeId{4}, d);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  simulator_.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_TRUE(d.frames.empty());
}

TEST_F(MediumTest, UnicastFramesStillReachAllInRangeRadios) {
  // A shared channel: address filtering is the receiver's job.
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{10.0, 0.0}};
  FixedRadio c{{20.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.attach(common::NodeId{3}, c);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::Address{2},
                                        makePayload<Ping>()});
  simulator_.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);  // overhears; filtering happens in nodes
}

TEST_F(MediumTest, DeliveryIsDelayedByLatency) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{10.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  EXPECT_TRUE(b.frames.empty());  // nothing until the event fires
  simulator_.run();
  EXPECT_EQ(simulator_.now().us(), config().perHopLatency.us());
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST_F(MediumTest, DetachedReceiverMissesInFlightFrame) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{10.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  medium_.detach(common::NodeId{2});  // leaves before delivery
  simulator_.run();
  EXPECT_TRUE(b.frames.empty());
}

TEST_F(MediumTest, SendFromUnattachedNodeAsserts) {
  EXPECT_THROW(medium_.send(common::NodeId{9},
                            Frame{common::Address{9},
                                  common::kBroadcastAddress,
                                  makePayload<Ping>()}),
               common::AssertionError);
}

TEST_F(MediumTest, DoubleAttachAsserts) {
  FixedRadio a{{0.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  EXPECT_THROW(medium_.attach(common::NodeId{1}, a), common::AssertionError);
}

TEST_F(MediumTest, FrameWithoutPayloadAsserts) {
  FixedRadio a{{0.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  EXPECT_THROW(medium_.send(common::NodeId{1},
                            Frame{common::Address{1},
                                  common::kBroadcastAddress, nullptr}),
               common::AssertionError);
}

TEST_F(MediumTest, InRangeQuery) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{900.0, 0.0}};
  FixedRadio c{{2000.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.attach(common::NodeId{3}, c);
  EXPECT_TRUE(medium_.inRange(common::NodeId{1}, common::NodeId{2}));
  EXPECT_FALSE(medium_.inRange(common::NodeId{1}, common::NodeId{3}));
  EXPECT_FALSE(medium_.inRange(common::NodeId{1}, common::NodeId{9}));
}

TEST_F(MediumTest, StatsCountFramesAndBytes) {
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{10.0, 0.0}};
  FixedRadio c{{20.0, 0.0}};
  medium_.attach(common::NodeId{1}, a);
  medium_.attach(common::NodeId{2}, b);
  medium_.attach(common::NodeId{3}, c);
  medium_.send(common::NodeId{1}, Frame{common::Address{1},
                                        common::kBroadcastAddress,
                                        makePayload<Ping>()});
  simulator_.run();
  EXPECT_EQ(medium_.stats().framesSent, 1u);
  EXPECT_EQ(medium_.stats().framesDelivered, 2u);
  EXPECT_GT(medium_.stats().bytesSent, 0u);
}

TEST(MediumLossTest, FullLossDeliversNothing) {
  sim::Simulator simulator;
  MediumConfig config;
  config.lossProbability = 1.0;
  WirelessMedium medium{simulator, sim::Rng{1}, config};
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{10.0, 0.0}};
  medium.attach(common::NodeId{1}, a);
  medium.attach(common::NodeId{2}, b);
  for (int i = 0; i < 10; ++i) {
    medium.send(common::NodeId{1}, Frame{common::Address{1},
                                         common::kBroadcastAddress,
                                         makePayload<Ping>()});
  }
  simulator.run();
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(medium.stats().framesLost, 10u);
}

TEST(MediumLossTest, PartialLossIsApproximatelyCalibrated) {
  sim::Simulator simulator;
  MediumConfig config;
  config.lossProbability = 0.3;
  WirelessMedium medium{simulator, sim::Rng{42}, config};
  FixedRadio a{{0.0, 0.0}};
  FixedRadio b{{10.0, 0.0}};
  medium.attach(common::NodeId{1}, a);
  medium.attach(common::NodeId{2}, b);
  for (int i = 0; i < 1000; ++i) {
    medium.send(common::NodeId{1}, Frame{common::Address{1},
                                         common::kBroadcastAddress,
                                         makePayload<Ping>()});
  }
  simulator.run();
  EXPECT_GT(b.frames.size(), 600u);
  EXPECT_LT(b.frames.size(), 800u);
}

// ---------------------------------------------------------------- backbone

class RecordingEndpoint final : public BackboneEndpoint {
 public:
  void onBackboneMessage(common::ClusterId from,
                         const PayloadPtr& payload) override {
    received.emplace_back(from, payload);
  }
  void onBackboneSendFailed(common::ClusterId to,
                            const PayloadPtr& payload) override {
    sendFailures.emplace_back(to, payload);
  }
  std::vector<std::pair<common::ClusterId, PayloadPtr>> received;
  std::vector<std::pair<common::ClusterId, PayloadPtr>> sendFailures;
};

TEST(BackboneTest, DeliversBetweenClusters) {
  sim::Simulator simulator;
  Backbone backbone{simulator};
  RecordingEndpoint a;
  RecordingEndpoint b;
  backbone.attach(common::ClusterId{1}, a);
  backbone.attach(common::ClusterId{2}, b);
  backbone.send(common::ClusterId{1}, common::ClusterId{2},
                makePayload<Ping>(5));
  simulator.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, common::ClusterId{1});
  EXPECT_EQ(payloadAs<Ping>(b.received[0].second)->value(), 5);
  EXPECT_TRUE(a.received.empty());
}

TEST(BackboneTest, UnknownDestinationCountsDropAndNotifiesSender) {
  sim::Simulator simulator;
  Backbone backbone{simulator};
  RecordingEndpoint a;
  backbone.attach(common::ClusterId{1}, a);
  EXPECT_NO_THROW(backbone.send(common::ClusterId{1}, common::ClusterId{9},
                                makePayload<Ping>()));
  simulator.run();
  EXPECT_EQ(backbone.stats().messagesDropped, 1u);
  ASSERT_EQ(a.sendFailures.size(), 1u);
  EXPECT_EQ(a.sendFailures[0].first, common::ClusterId{9});
}

TEST(BackboneTest, SendFromUnattachedIsRecoverable) {
  // A CH that crashed with a send still queued must not abort the run: the
  // message is counted as dropped and reported via the global callback.
  sim::Simulator simulator;
  Backbone backbone{simulator};
  int failures = 0;
  backbone.setSendFailureCallback(
      [&](common::ClusterId from, common::ClusterId to, const PayloadPtr&) {
        ++failures;
        EXPECT_EQ(from, common::ClusterId{1});
        EXPECT_EQ(to, common::ClusterId{2});
      });
  EXPECT_NO_THROW(backbone.send(common::ClusterId{1}, common::ClusterId{2},
                                makePayload<Ping>()));
  simulator.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(backbone.stats().sendsFromUnattached, 1u);
  EXPECT_EQ(backbone.stats().messagesDropped, 1u);
  EXPECT_EQ(backbone.stats().messagesSent, 0u);
}

TEST(BackboneTest, LinkFilterBlocksAndNotifies) {
  sim::Simulator simulator;
  Backbone backbone{simulator};
  RecordingEndpoint a;
  RecordingEndpoint b;
  backbone.attach(common::ClusterId{1}, a);
  backbone.attach(common::ClusterId{2}, b);
  bool linkUp = false;
  backbone.setLinkFilter(
      [&](common::ClusterId, common::ClusterId) { return linkUp; });
  backbone.send(common::ClusterId{1}, common::ClusterId{2},
                makePayload<Ping>());
  simulator.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(backbone.stats().linkBlocked, 1u);
  ASSERT_EQ(a.sendFailures.size(), 1u);

  linkUp = true;
  backbone.send(common::ClusterId{1}, common::ClusterId{2},
                makePayload<Ping>());
  simulator.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.sendFailures.size(), 1u);
}

TEST(BackboneTest, CountsTraffic) {
  sim::Simulator simulator;
  Backbone backbone{simulator};
  RecordingEndpoint a;
  RecordingEndpoint b;
  backbone.attach(common::ClusterId{1}, a);
  backbone.attach(common::ClusterId{2}, b);
  backbone.send(common::ClusterId{1}, common::ClusterId{2},
                makePayload<Ping>());
  backbone.send(common::ClusterId{2}, common::ClusterId{1},
                makePayload<Ping>());
  simulator.run();
  EXPECT_EQ(backbone.stats().messagesSent, 2u);
}

TEST(BackboneTest, DetachStopsDelivery) {
  sim::Simulator simulator;
  Backbone backbone{simulator};
  RecordingEndpoint a;
  RecordingEndpoint b;
  backbone.attach(common::ClusterId{1}, a);
  backbone.attach(common::ClusterId{2}, b);
  backbone.send(common::ClusterId{1}, common::ClusterId{2},
                makePayload<Ping>());
  backbone.detach(common::ClusterId{2});
  simulator.run();
  EXPECT_TRUE(b.received.empty());
}

// -------------------------------------------------------------- basic node

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : medium_{simulator_, sim::Rng{1}, deterministicMediumConfig()} {}

  sim::Simulator simulator_;
  WirelessMedium medium_;
};

TEST_F(NodeTest, FiltersFramesByAddress) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{100});
  b.setLocalAddress(common::Address{200});

  int received = 0;
  b.addHandler([&](const Frame&) {
    ++received;
    return true;
  });

  a.sendTo(common::Address{200}, makePayload<Ping>());  // for b
  a.sendTo(common::Address{300}, makePayload<Ping>());  // for nobody
  a.broadcast(makePayload<Ping>());                     // for everyone
  simulator_.run();
  EXPECT_EQ(received, 2);
}

TEST_F(NodeTest, HandlersRunInOrderUntilConsumed) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  b.setLocalAddress(common::Address{200});

  std::vector<int> calls;
  b.addHandler([&](const Frame&) {
    calls.push_back(1);
    return false;  // pass on
  });
  b.addHandler([&](const Frame&) {
    calls.push_back(2);
    return true;  // consume
  });
  b.addHandler([&](const Frame&) {
    calls.push_back(3);
    return true;
  });

  a.sendTo(common::Address{200}, makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(calls, (std::vector<int>{1, 2}));
}

TEST_F(NodeTest, AliasesReceive) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  b.setLocalAddress(common::Address{200});
  b.addAlias(common::Address{777});

  int received = 0;
  b.addHandler([&](const Frame&) {
    ++received;
    return true;
  });

  a.sendTo(common::Address{777}, makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(received, 1);

  b.removeAlias(common::Address{777});
  a.sendTo(common::Address{777}, makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NodeTest, SendFromAliasStampsSource) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{100});
  b.setLocalAddress(common::Address{200});

  common::Address seenSrc{};
  b.addHandler([&](const Frame& frame) {
    seenSrc = frame.src;
    return true;
  });

  a.sendFromAlias(common::Address{555}, common::Address{200},
                  makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(seenSrc, common::Address{555});
}

TEST_F(NodeTest, DetachedNodeNeitherSendsNorReceives) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  b.setLocalAddress(common::Address{200});

  int received = 0;
  b.addHandler([&](const Frame&) {
    ++received;
    return true;
  });

  b.detachFromMedium();
  a.sendTo(common::Address{200}, makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(received, 0);
  EXPECT_FALSE(b.isAttached());

  b.detachFromMedium();  // idempotent
  a.broadcast(makePayload<Ping>());
  EXPECT_NO_THROW(simulator_.run());

  // A detached node's own sends are no-ops, not errors.
  EXPECT_NO_THROW(b.broadcast(makePayload<Ping>()));
}

TEST_F(NodeTest, PositionFollowsMotion) {
  net::BasicNode a{
      simulator_, medium_, common::NodeId{1},
      mobility::LinearMotion{{0.0, 0.0}, 10.0,
                             mobility::Direction::kEastbound,
                             simulator_.now()}};
  bool checked = false;
  simulator_.schedule(sim::Duration::seconds(5), [&] {
    EXPECT_DOUBLE_EQ(a.radioPosition().x, 50.0);
    checked = true;
  });
  simulator_.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace blackdp::net
