// System-level properties held over randomized treatments (TEST_P sweeps):
//
//  P1. Zero false positives — no honest node is ever confirmed or isolated,
//      whatever the seed, attacker placement, or attack type.
//  P2. Prevention — data never flows through a black hole's forwarding path.
//  P3. Determinism — identical configurations produce identical executions.
//  P4. Conservation — detectors answer every authenticated report exactly
//      once; verification tables drain.
#include <gtest/gtest.h>

#include "scenario/highway_scenario.hpp"

namespace blackdp::scenario {
namespace {

struct Treatment {
  std::uint64_t seed;
  AttackType attack;
  std::uint32_t cluster;
};

void PrintTo(const Treatment& t, std::ostream* os) {
  *os << "seed=" << t.seed << " attack=" << toString(t.attack)
      << " cluster=" << t.cluster;
}

class SystemProperty : public ::testing::TestWithParam<Treatment> {
 protected:
  static ScenarioConfig configFor(const Treatment& t) {
    ScenarioConfig config;
    config.seed = t.seed;
    config.attack = t.attack;
    config.attackerCluster = common::ClusterId{t.cluster};
    return config;  // evasion enabled per default policy — part of the sweep
  }
};

TEST_P(SystemProperty, NoFalsePositiveEver) {
  HighwayScenario world(configFor(GetParam()));
  (void)world.runVerification();
  const DetectionSummary summary = world.detectionSummary();
  EXPECT_FALSE(summary.falsePositive);

  // Isolation side of the same invariant: every revoked pseudonym belongs
  // to a real attacker.
  for (const crypto::RevocationNotice& notice :
       world.taNetwork().revocations()) {
    EXPECT_TRUE(world.isAttackerPseudonym(notice.pseudonym));
  }
  // And no honest vehicle ever lands on a blacklist.
  for (auto& vehicle : world.vehicles()) {
    if (vehicle->isAttacker()) continue;
    for (auto& other : world.vehicles()) {
      if (other->isAttacker()) continue;
      EXPECT_FALSE(
          vehicle->membership->isBlacklisted(other->address()));
    }
  }
}

TEST_P(SystemProperty, BlackHoleNeverForwardsData) {
  HighwayScenario world(configFor(GetParam()));
  (void)world.runVerification();
  if (world.primaryAttacker() != nullptr) {
    EXPECT_EQ(world.primaryAttacker()->agent->stats().dataForwarded, 0u);
  }
  if (world.accomplice() != nullptr) {
    EXPECT_EQ(world.accomplice()->agent->stats().dataForwarded, 0u);
  }
}

TEST_P(SystemProperty, DeterministicReplay) {
  const auto run = [&] {
    HighwayScenario world(configFor(GetParam()));
    const core::VerificationReport report = world.runVerification();
    return std::tuple{report.outcome, report.suspect, report.helloProbes,
                      world.simulator().executedEvents(),
                      world.medium().stats().framesSent};
  };
  EXPECT_EQ(run(), run());
}

TEST_P(SystemProperty, VerificationTablesDrain) {
  HighwayScenario world(configFor(GetParam()));
  (void)world.runVerification();
  world.runFor(sim::Duration::seconds(10));
  for (auto& rsu : world.rsus()) {
    EXPECT_EQ(rsu->detector->activeSessions(), 0u)
        << "cluster " << rsu->cluster.value();
  }
}

TEST_P(SystemProperty, ConfirmationImpliesIsolationEverywhere) {
  HighwayScenario world(configFor(GetParam()));
  (void)world.runVerification();
  world.runFor(sim::Duration::seconds(1));
  const DetectionSummary summary = world.detectionSummary();
  if (!summary.confirmedOnAttacker) return;
  const auto& revocations = world.taNetwork().revocations();
  ASSERT_FALSE(revocations.empty());
  for (auto& rsu : world.rsus()) {
    EXPECT_TRUE(rsu->head->revocations().isRevokedSerial(
        revocations.front().serial));
  }
  EXPECT_TRUE(
      world.taNetwork().isRenewalPaused(world.primaryAttacker()->nodeId));
}

std::vector<Treatment> sweep() {
  std::vector<Treatment> treatments;
  std::uint64_t seed = 1000;
  for (const AttackType attack :
       {AttackType::kNone, AttackType::kSingle, AttackType::kCooperative}) {
    for (const std::uint32_t cluster : {1u, 2u, 5u, 8u, 9u, 10u}) {
      treatments.push_back({seed++, attack, cluster});
    }
  }
  // A few extra random-ish seeds on the hardest treatments.
  treatments.push_back({77, AttackType::kSingle, 10u});
  treatments.push_back({78, AttackType::kCooperative, 10u});
  treatments.push_back({79, AttackType::kSingle, 8u});
  return treatments;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SystemProperty, ::testing::ValuesIn(sweep()));

// Loss resilience: even with 5% frame loss the invariants hold (detection
// may fail; false positives still must not happen).
class LossyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyProperty, NoFalsePositivesUnderFrameLoss) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.attack = AttackType::kSingle;
  config.attackerCluster = common::ClusterId{3};
  config.medium.lossProbability = 0.05;
  HighwayScenario world(config);
  (void)world.runVerification();
  EXPECT_FALSE(world.detectionSummary().falsePositive);
  for (const crypto::RevocationNotice& notice :
       world.taNetwork().revocations()) {
    EXPECT_TRUE(world.isAttackerPseudonym(notice.pseudonym));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace blackdp::scenario
