// Unit tests for the observability layer: trace recording, the metrics
// registry, the JSON exporters, and the trace_report reconstruction logic.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/confusion.hpp"
#include "metrics/stats.hpp"
#include "obs/bench_json.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace {

using namespace blackdp;
using obs::DetectorOp;
using obs::DropCause;
using obs::EventKind;
using obs::TraceEvent;
using obs::VerifierOp;

// ------------------------------------------------------------------- trace

TEST(TraceTest, NoRecorderByDefault) {
  EXPECT_EQ(obs::Trace::active(), nullptr);
}

TEST(TraceTest, ScopedRecorderInstallsAndRestores) {
  obs::MemoryRecorder outer;
  obs::ScopedTraceRecorder scopedOuter{&outer};
  EXPECT_EQ(obs::Trace::active(), &outer);
  {
    obs::MemoryRecorder inner;
    obs::ScopedTraceRecorder scopedInner{&inner};
    EXPECT_EQ(obs::Trace::active(), &inner);
  }
  EXPECT_EQ(obs::Trace::active(), &outer);
}

TEST(TraceTest, MemoryRecorderBuffersEvents) {
  obs::MemoryRecorder recorder;
  recorder.record(TraceEvent{1, EventKind::kFrameTx});
  recorder.record(TraceEvent{2, EventKind::kFrameRx});
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.events()[0].atUs, 1);
  EXPECT_EQ(recorder.events()[1].kind, EventKind::kFrameRx);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

// --------------------------------------------------------------- histogram

TEST(HistogramTest, BucketEdgesAreUpperInclusive) {
  obs::Histogram hist{{1.0, 2.0, 5.0}};
  ASSERT_EQ(hist.counts().size(), 4u);  // 3 edges + overflow

  hist.observe(0.5);  // <= 1       -> bucket 0
  hist.observe(1.0);  // == edge 0  -> bucket 0 (upper-inclusive)
  hist.observe(1.5);  // <= 2       -> bucket 1
  hist.observe(5.0);  // == edge 2  -> bucket 2
  hist.observe(7.0);  // > last     -> overflow

  EXPECT_EQ(hist.counts()[0], 2u);
  EXPECT_EQ(hist.counts()[1], 1u);
  EXPECT_EQ(hist.counts()[2], 1u);
  EXPECT_EQ(hist.counts()[3], 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 15.0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 7.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 3.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  const obs::Histogram hist{{1.0}};
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(HistogramTest, LatencyBucketsSpanMillisecondToTenSeconds) {
  const auto& edges = obs::latencyBucketsMs();
  ASSERT_FALSE(edges.empty());
  EXPECT_DOUBLE_EQ(edges.front(), 1.0);
  EXPECT_DOUBLE_EQ(edges.back(), 10'000.0);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, LookupCreatesOnFirstUseAndPersists) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(2);
  registry.counter("a.count").add(3);
  registry.gauge("a.rate").set(0.5);
  registry.histogram("a.lat", {1.0, 2.0}).observe(1.5);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("a.rate"), 0.5);
  ASSERT_EQ(snap.histograms.at("a.lat").counts.size(), 3u);
  EXPECT_EQ(snap.histograms.at("a.lat").counts[1], 1u);
}

TEST(RegistryTest, AddConfusionExportsCellsAndRates) {
  obs::MetricsRegistry registry;
  obs::addConfusion(registry, "fig4.single",
                    metrics::ConfusionMatrix::fromCounts(9, 0, 10, 1));
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("fig4.single.tp"), 9u);
  EXPECT_EQ(snap.counters.at("fig4.single.fn"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fig4.single.recall"), 0.9);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fig4.single.false_positive_rate"), 0.0);
}

TEST(RegistryTest, AddRunningStatExportsMoments) {
  metrics::RunningStat stat;
  stat.add(1.0);
  stat.add(3.0);
  obs::MetricsRegistry registry;
  obs::addRunningStat(registry, "pdr.honest", stat);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("pdr.honest.count"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pdr.honest.mean"), 2.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pdr.honest.min"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pdr.honest.max"), 3.0);
}

TEST(RegistryTest, SnapshotJsonHasAllThreeSections) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {1.0}).observe(0.5);
  const std::string json = registry.snapshot().toJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"g\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"edges\": [1]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);
}

TEST(RegistryTest, MergeAddsCountersOverwritesGaugesAndFoldsHistograms) {
  obs::MetricsRegistry a;
  a.counter("c").add(2);
  a.gauge("g").set(1.0);
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  a.histogram("h", {1.0, 2.0}).observe(9.0);

  obs::MetricsRegistry b;
  b.counter("c").add(3);
  b.counter("only_b").add(1);
  b.gauge("g").set(4.0);
  b.histogram("h", {1.0, 2.0}).observe(1.5);

  a.merge(b.snapshot());
  const obs::Snapshot merged = a.snapshot();
  EXPECT_EQ(merged.counters.at("c"), 5u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 4.0);  // last writer wins
  const auto& hist = merged.histograms.at("h");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.counts[0], 1u);  // 0.5
  EXPECT_EQ(hist.counts[1], 1u);  // 1.5
  EXPECT_EQ(hist.counts[2], 1u);  // 9.0 overflow
  EXPECT_DOUBLE_EQ(hist.sum, 11.0);
  EXPECT_DOUBLE_EQ(hist.min, 0.5);
  EXPECT_DOUBLE_EQ(hist.max, 9.0);
}

TEST(RegistryTest, MergeSequenceMatchesSerialFold) {
  // Folding three per-trial snapshots in submission order must equal one
  // registry fed the same observations serially — the parallel runner's
  // merge contract.
  obs::MetricsRegistry serial;
  obs::MetricsRegistry merged;
  for (int trial = 0; trial < 3; ++trial) {
    obs::MetricsRegistry local;
    for (obs::MetricsRegistry* r : {&serial, &local}) {
      r->counter("n").add(static_cast<std::uint64_t>(trial) + 1);
      r->gauge("last").set(trial);
      r->histogram("h", {10.0}).observe(trial * 5.0);
    }
    merged.merge(local.snapshot());
  }
  EXPECT_EQ(serial.snapshot().toJson(), merged.snapshot().toJson());
}

TEST(BenchJsonTest, DocumentCarriesNameAndSchemaVersion) {
  obs::MetricsRegistry registry;
  registry.counter("x").add(7);
  const std::string doc = obs::benchJson("demo", registry.snapshot());
  EXPECT_NE(doc.find("\"bench\": \"demo\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"x\": 7"), std::string::npos);
}

TEST(BenchJsonTest, WallClockAndThroughputAreTopLevel) {
  obs::MetricsRegistry registry;
  registry.counter("medium.frames_delivered").add(500);
  obs::BenchRunInfo info;
  info.wallClockSeconds = 2.0;
  info.framesDelivered = 1000;
  const std::string doc = obs::benchJson("demo", registry.snapshot(), info);
  EXPECT_NE(doc.find("\"wall_clock_seconds\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"frames_delivered\": 1000"), std::string::npos);
  EXPECT_NE(doc.find("\"frames_per_second\": 500"), std::string::npos);
  // The sidecar lives OUTSIDE "metrics", which stays deterministic.
  EXPECT_LT(doc.find("\"throughput\""), doc.find("\"metrics\""));
}

TEST(BenchJsonTest, FramesDeliveredDerivedFromCountersWhenUnset) {
  obs::MetricsRegistry registry;
  registry.counter("medium.frames_delivered").add(300);
  registry.counter("treatmentA.medium.frames_delivered").add(200);
  registry.counter("unrelated_frames_delivered").add(999);  // no dot prefix
  registry.counter("medium.frames_sent").add(777);
  obs::BenchRunInfo info;
  info.wallClockSeconds = 1.0;
  const std::string doc = obs::benchJson("demo", registry.snapshot(), info);
  EXPECT_NE(doc.find("\"frames_delivered\": 500"), std::string::npos);
  EXPECT_NE(doc.find("\"frames_per_second\": 500"), std::string::npos);
}

TEST(BenchJsonTest, ZeroWallClockYieldsZeroRate) {
  obs::MetricsRegistry registry;
  const std::string doc = obs::benchJson("demo", registry.snapshot());
  EXPECT_NE(doc.find("\"wall_clock_seconds\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"frames_per_second\": 0"), std::string::npos);
}

// -------------------------------------------------------------------- json

TEST(JsonTest, StringEscaping) {
  std::string out;
  obs::appendJsonString(out, "a\"b\\c\n\t");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(JsonTest, FlatObjectParsesScalars) {
  const auto obj = obs::FlatJsonObject::parse(
      R"({"t":42,"kind":"detector","neg":-7,"pi":3.5})");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->u64("t"), 42u);
  EXPECT_EQ(obj->string("kind"), "detector");
  EXPECT_EQ(obj->i64("neg"), -7);
  EXPECT_EQ(obj->number("pi"), 3.5);
  EXPECT_FALSE(obj->string("missing").has_value());
}

TEST(JsonTest, FlatObjectRejectsNestingAndGarbage) {
  EXPECT_FALSE(obs::FlatJsonObject::parse(R"({"a":{"b":1}})").has_value());
  EXPECT_FALSE(obs::FlatJsonObject::parse(R"({"a":[1]})").has_value());
  EXPECT_FALSE(obs::FlatJsonObject::parse(R"({"a":1} x)").has_value());
  EXPECT_FALSE(obs::FlatJsonObject::parse("not json").has_value());
}

TEST(JsonTest, JsonValueParsesNestedDocuments) {
  const auto doc = obs::JsonValue::parse(
      R"({"name":"x","n":3,"neg":-2.5,"flag":true,"null":null,)"
      R"("list":[1,"two",{"three":3}],"obj":{"a":{"b":[false]}}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->isObject());
  EXPECT_EQ(doc->find("name")->asString(), "x");
  EXPECT_EQ(doc->find("n")->asU64(), 3u);
  EXPECT_EQ(doc->find("neg")->asNumber(), -2.5);
  EXPECT_EQ(doc->find("flag")->asBool(), true);
  EXPECT_TRUE(doc->find("null")->isNull());
  const obs::JsonValue* list = doc->find("list");
  ASSERT_TRUE(list != nullptr && list->isArray());
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_EQ(list->items()[0].asI64(), 1);
  EXPECT_EQ(list->items()[1].asString(), "two");
  EXPECT_EQ(list->items()[2].find("three")->asU64(), 3u);
  EXPECT_EQ(doc->find("obj")->find("a")->find("b")->items()[0].asBool(),
            false);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonTest, JsonValueRejectsMalformedAndTooDeep) {
  EXPECT_FALSE(obs::JsonValue::parse("").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("{").has_value());
  EXPECT_FALSE(obs::JsonValue::parse(R"({"a":1,})").has_value());
  EXPECT_FALSE(obs::JsonValue::parse(R"([1 2])").has_value());
  EXPECT_FALSE(obs::JsonValue::parse(R"({"a":1} x)").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("tru").has_value());
  // Depth cap: 100 nested arrays exceed kMaxJsonDepth.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(obs::JsonValue::parse(deep).has_value());
}

TEST(JsonTest, JsonValueNumbersRoundTripExactly) {
  // Snapshot round-trips through manifest rows rely on to_chars/from_chars
  // shortest-representation exactness.
  const auto doc = obs::JsonValue::parse(R"([0.1, 1e-3, 18446744073709551615])");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->items()[0].asNumber(), 0.1);
  EXPECT_EQ(doc->items()[1].asNumber(), 1e-3);
  EXPECT_EQ(doc->items()[2].asU64(), 18446744073709551615ull);
  EXPECT_FALSE(doc->items()[0].asU64().has_value());
}

// ---------------------------------------------------------------- trace IO

TEST(TraceIoTest, JsonLineGolden) {
  const TraceEvent full{1234,
                        EventKind::kDetector,
                        static_cast<std::uint8_t>(DetectorOp::kProbeSent),
                        100002,
                        2,
                        1001,
                        1002,
                        42,
                        1,
                        "x"};
  EXPECT_EQ(obs::toJsonLine(full),
            R"({"t":1234,"kind":"detector","op":"probe-sent","node":100002,)"
            R"("cluster":2,"a":1001,"b":1002,"session":42,"value":1,)"
            R"("detail":"x"})");

  // Zero-valued generic slots and empty details are omitted.
  EXPECT_EQ(obs::toJsonLine(TraceEvent{0, EventKind::kFrameRx}),
            R"({"t":0,"kind":"frame-rx"})");

  // Drop events name their cause as the op.
  const TraceEvent drop{5, EventKind::kFrameDrop,
                        static_cast<std::uint8_t>(DropCause::kJam), 3};
  EXPECT_EQ(obs::toJsonLine(drop),
            R"({"t":5,"kind":"frame-drop","op":"jam","node":3})");
}

TEST(TraceIoTest, JsonLineRoundTripsExactly) {
  const std::vector<TraceEvent> events{
      TraceEvent{0, EventKind::kFrameTx, 0, 1, 0, 1000, 99, 0, 56, "jreq"},
      TraceEvent{7, EventKind::kFrameDrop,
                 static_cast<std::uint8_t>(DropCause::kBurstLoss), 4},
      TraceEvent{9, EventKind::kVerifier,
                 static_cast<std::uint8_t>(VerifierOp::kSuspected), 1, 0,
                 1001},
      TraceEvent{11, EventKind::kDetector,
                 static_cast<std::uint8_t>(DetectorOp::kVerdict), 100002, 2,
                 1001, 1002, 42, 2, "cooperative-black-hole"},
  };
  for (const TraceEvent& event : events) {
    const auto parsed = obs::parseJsonLine(obs::toJsonLine(event));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, event);
  }
}

TEST(TraceIoTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(obs::parseJsonLine("{}").has_value());  // missing t/kind
  EXPECT_FALSE(obs::parseJsonLine(R"({"t":1,"kind":"nope"})").has_value());
  EXPECT_FALSE(
      obs::parseJsonLine(R"({"t":1,"kind":"detector","op":"nope"})")
          .has_value());
}

TEST(TraceIoTest, JsonlStreamRoundTripAndErrorLineNumber) {
  const std::vector<TraceEvent> events{
      TraceEvent{1, EventKind::kFrameTx, 0, 1},
      TraceEvent{2, EventKind::kFrameRx, 0, 2},
  };
  std::stringstream stream;
  obs::writeJsonl(events, stream);
  EXPECT_EQ(obs::readJsonl(stream), events);

  std::stringstream bad{"{\"t\":1,\"kind\":\"frame-tx\"}\n\ngarbage\n"};
  try {
    (void)obs::readJsonl(bad);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(TraceIoTest, KindAndOpReverseLookups) {
  EXPECT_EQ(obs::kindFromString("detector"), EventKind::kDetector);
  EXPECT_EQ(obs::kindFromString("ch-table"), EventKind::kChTable);
  EXPECT_FALSE(obs::kindFromString("bogus").has_value());
  EXPECT_EQ(obs::opFromName(EventKind::kDetector, "probe-sent"),
            static_cast<std::uint8_t>(DetectorOp::kProbeSent));
  EXPECT_EQ(obs::opFromName(EventKind::kFrameDrop, "jam"),
            static_cast<std::uint8_t>(DropCause::kJam));
  EXPECT_FALSE(obs::opFromName(EventKind::kDetector, "bogus").has_value());
}

TEST(TraceIoTest, ChromeTraceGolden) {
  const std::vector<TraceEvent> events{
      TraceEvent{10, EventKind::kDetector,
                 static_cast<std::uint8_t>(DetectorOp::kProbeSent), 7, 2,
                 1001},
  };
  std::stringstream stream;
  obs::writeChromeTrace(events, stream);
  EXPECT_EQ(stream.str(),
            "[\n"
            R"({"name":"detector/probe-sent","cat":"detector","ph":"i",)"
            R"("s":"t","pid":0,"tid":7,"ts":10,"args":{"cluster":2,)"
            R"("a":1001}})"
            "\n]\n");
}

// ------------------------------------------------------------------ report

std::vector<TraceEvent> syntheticDetectionTrace() {
  const auto op = [](auto o) { return static_cast<std::uint8_t>(o); };
  // Reporter 1000 suspects 1001; CH 100002 probes and confirms.
  return {
      TraceEvent{100, EventKind::kVerifier, op(VerifierOp::kSuspected), 1, 0,
                 1001},
      TraceEvent{100, EventKind::kVerifier, op(VerifierOp::kDreqSent), 1, 0,
                 1001},
      TraceEvent{150, EventKind::kFrameDrop, op(DropCause::kJam), 4},
      TraceEvent{200, EventKind::kDetector, op(DetectorOp::kDreqReceived),
                 100002, 2, 1001, 1000, 42},
      TraceEvent{200, EventKind::kDetector, op(DetectorOp::kSessionOpened),
                 100002, 2, 1001, 1000, 42},
      TraceEvent{300, EventKind::kDetector, op(DetectorOp::kProbeSent),
                 100002, 2, 1001, 1001, 42, 0},
      TraceEvent{400, EventKind::kDetector, op(DetectorOp::kProbeReply),
                 100002, 2, 1001, 1001, 42, 0},
      TraceEvent{500, EventKind::kDetector, op(DetectorOp::kVerdict), 100002,
                 2, 1001, 0, 42, 1, "single-black-hole"},
      TraceEvent{500, EventKind::kDetector, op(DetectorOp::kIsolated), 100002,
                 2, 1001, 0, 42},
  };
}

TEST(ReportTest, ReconstructsFullSessionTimeline) {
  const obs::TraceReport report = obs::buildReport(syntheticDetectionTrace());
  EXPECT_EQ(report.eventCount, 9u);
  EXPECT_EQ(report.firstUs, 100);
  EXPECT_EQ(report.lastUs, 500);
  EXPECT_EQ(report.dropsByCause.at("jam"), 1u);
  EXPECT_EQ(report.eventsByKind.at("detector"), 6u);

  ASSERT_EQ(report.sessions.size(), 1u);
  const obs::SessionTimeline& session = report.sessions[0];
  EXPECT_EQ(session.session, 42u);
  EXPECT_EQ(session.suspect, 1001u);
  EXPECT_EQ(session.reporter, 1000u);
  EXPECT_EQ(session.verdict, "single-black-hole");
  EXPECT_EQ(session.suspectedAtUs, 100);
  EXPECT_EQ(session.dreqAtUs, 100);
  EXPECT_EQ(session.probeAtUs, 300);
  EXPECT_EQ(session.verdictAtUs, 500);
  EXPECT_EQ(session.isolatedAtUs, 500);
  EXPECT_TRUE(session.complete());
  // Verifier prologue + 6 detector events, time-ordered.
  ASSERT_EQ(session.entries.size(), 8u);
  EXPECT_LE(session.entries.front().atUs, session.entries.back().atUs);
}

TEST(ReportTest, IncompleteSessionIsNotComplete) {
  auto events = syntheticDetectionTrace();
  events.resize(5);  // stop after session-opened: no probe, no verdict
  const obs::TraceReport report = obs::buildReport(events);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_FALSE(report.sessions[0].complete());
  EXPECT_EQ(report.sessions[0].probeAtUs, -1);
}

TEST(ReportTest, AccusationDefenseEventsAreTalliedAndPrinted) {
  const auto op = [](auto o) { return static_cast<std::uint8_t>(o); };
  // A forged accusation against honest 1001: rate-limit + replay rejections
  // (pre-session, session id 0), then a session that exonerates the suspect,
  // demerits reporter 1000, and quarantines it as a liar.
  const std::vector<TraceEvent> events{
      TraceEvent{50, EventKind::kDetector, op(DetectorOp::kDreqRateLimited),
                 100002, 2, 1001, 1000, 0},
      TraceEvent{60, EventKind::kDetector, op(DetectorOp::kDreqReplayed),
                 100002, 2, 1001, 1000, 0},
      TraceEvent{100, EventKind::kDetector, op(DetectorOp::kSessionOpened),
                 100002, 2, 1001, 1000, 42},
      TraceEvent{200, EventKind::kDetector, op(DetectorOp::kProbeSent), 100002,
                 2, 1001, 1001, 42, 0},
      TraceEvent{400, EventKind::kDetector, op(DetectorOp::kExonerated),
                 100002, 2, 1001, 1000, 42},
      TraceEvent{400, EventKind::kDetector, op(DetectorOp::kReporterDemerited),
                 100002, 2, 1001, 1000, 42},
      TraceEvent{400, EventKind::kDetector,
                 op(DetectorOp::kReporterQuarantined), 100002, 2, 1001, 1000,
                 42},
  };
  const obs::TraceReport report = obs::buildReport(events);
  EXPECT_TRUE(report.accusationDefense.any());
  EXPECT_EQ(report.accusationDefense.rateLimited, 1u);
  EXPECT_EQ(report.accusationDefense.replayed, 1u);
  EXPECT_EQ(report.accusationDefense.exonerations, 1u);
  EXPECT_EQ(report.accusationDefense.demerits, 1u);
  EXPECT_EQ(report.accusationDefense.reportersQuarantined, 1u);

  ASSERT_EQ(report.sessions.size(), 1u);
  const obs::SessionTimeline& session = report.sessions[0];
  EXPECT_EQ(session.exoneratedAtUs, 400);
  EXPECT_EQ(session.reporterDemerits, 1u);
  ASSERT_EQ(session.quarantinedReporters.size(), 1u);
  EXPECT_EQ(session.quarantinedReporters[0], 1000u);

  std::stringstream out;
  obs::printReport(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("accusation defense:"), std::string::npos);
  EXPECT_NE(text.find("d_req rate-limited: 1"), std::string::npos);
  EXPECT_NE(text.find("suspect exonerated at"), std::string::npos);
  EXPECT_NE(text.find("quarantined liar(s): 1000"), std::string::npos);
  EXPECT_NE(text.find("reporter=1000"), std::string::npos);
}

TEST(ReportTest, CleanTraceHasNoAccusationDefenseBlock) {
  const obs::TraceReport report = obs::buildReport(syntheticDetectionTrace());
  EXPECT_FALSE(report.accusationDefense.any());
  std::stringstream out;
  obs::printReport(report, out);
  EXPECT_EQ(out.str().find("accusation defense:"), std::string::npos);
}

TEST(ReportTest, PrintedReportNamesTheStages) {
  std::stringstream out;
  obs::printReport(obs::buildReport(syntheticDetectionTrace()), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("suspicion->d_req"), std::string::npos);
  EXPECT_NE(text.find("d_req->probe"), std::string::npos);
  EXPECT_NE(text.find("probe->verdict"), std::string::npos);
  EXPECT_NE(text.find("single-black-hole"), std::string::npos);
  EXPECT_NE(text.find("[complete]"), std::string::npos);
}

}  // namespace
