// Cluster-head work-queue model (§III-C): service order, parallelism,
// queueing statistics.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/ch_load_model.hpp"

namespace blackdp::core {
namespace {

TEST(ChLoadTest, SingleJobCompletesAfterServiceTime) {
  sim::Simulator simulator;
  ChLoadConfig config;
  config.verificationService = sim::Duration::milliseconds(2);
  ChLoadModel model{simulator, config};

  sim::TimePoint doneAt;
  model.submit([&] { doneAt = simulator.now(); });
  simulator.run();
  EXPECT_EQ(doneAt.us(), 2'000);
  EXPECT_EQ(model.stats().jobsCompleted, 1u);
  EXPECT_EQ(model.stats().totalWait.us(), 0);
}

TEST(ChLoadTest, JobsQueueFifoOnOneServer) {
  sim::Simulator simulator;
  ChLoadConfig config;
  config.verificationService = sim::Duration::milliseconds(1);
  ChLoadModel model{simulator, config};

  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    model.submit([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(model.queueDepth(), 2u);  // one in service, two waiting
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(simulator.now().us(), 3'000);
  // Waits: 0, 1 ms, 2 ms → mean 1 ms.
  EXPECT_DOUBLE_EQ(model.stats().meanWaitMs(), 1.0);
  EXPECT_EQ(model.stats().maxQueueDepth, 2u);
}

TEST(ChLoadTest, FogNodesServeInParallel) {
  sim::Simulator simulator;
  ChLoadConfig config;
  config.verificationService = sim::Duration::milliseconds(1);
  config.fogNodes = 2;  // three servers total
  ChLoadModel model{simulator, config};
  EXPECT_EQ(model.serverCount(), 3u);

  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    model.submit([&completed] { ++completed; });
  }
  EXPECT_EQ(model.queueDepth(), 0u);  // all in service at once
  simulator.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(simulator.now().us(), 1'000);  // parallel, not serial
  EXPECT_EQ(model.stats().totalWait.us(), 0);
}

TEST(ChLoadTest, ServersRecycleAcrossBatches) {
  sim::Simulator simulator;
  ChLoadModel model{simulator, {}};
  int completed = 0;
  model.submit([&] { ++completed; });
  simulator.run();
  model.submit([&] { ++completed; });
  simulator.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(model.idleServers(), 1u);
}

TEST(ChLoadTest, UtilisationFormula) {
  sim::Simulator simulator;
  ChLoadConfig config;
  config.verificationService = sim::Duration::milliseconds(2);
  config.fogNodes = 3;
  ChLoadModel model{simulator, config};
  // λ = 500/s, s = 2 ms, c = 4 → ρ = 0.25.
  EXPECT_DOUBLE_EQ(model.utilisationFor(500.0), 0.25);
}

TEST(ChLoadTest, SaturatedServerBuildsBacklog) {
  sim::Simulator simulator;
  ChLoadConfig config;
  config.verificationService = sim::Duration::milliseconds(10);
  ChLoadModel model{simulator, config};
  // 50 jobs arrive instantly; a lone 10 ms server needs 500 ms.
  int completed = 0;
  for (int i = 0; i < 50; ++i) model.submit([&completed] { ++completed; });
  EXPECT_EQ(model.stats().maxQueueDepth, 49u);
  simulator.run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(simulator.now().us(), 500'000);
  EXPECT_GT(model.stats().meanWaitMs(), 200.0);
}

TEST(ChLoadTest, NullJobRejected) {
  sim::Simulator simulator;
  ChLoadModel model{simulator, {}};
  EXPECT_THROW(model.submit(nullptr), common::AssertionError);
}

}  // namespace
}  // namespace blackdp::core
