// Fault-tolerance contracts of the sharded megacity:
//   - envelope wire form and batch seals;
//   - every barrier integrity violation (hop bound, plan membership, seq
//     duplicate/reorder/gap, batch CRC) surfaces as a typed, catchable
//     ShardIntegrityError with its ShardStats counter bumped — including in
//     release builds, where these used to be compiled-out asserts;
//   - kill-at-ANY-epoch-boundary + restore reproduces the uninterrupted
//     run's metrics JSON and canonical log byte for byte;
//   - a corruption corpus over the checkpoint blob (every prefix, every
//     byte flipped, re-sealed version/meta skew, structural section
//     surgery) always yields a typed error, never UB;
//   - the supervisor restarts a scripted-crash shard from its snapshot and
//     replays the missed envelopes, converging to the no-fault surfaces;
//   - a segment whose RSU is scripted dark still applies revocation gossip
//     from its neighbours (degraded-mode isolation) while producing no
//     detection activity of its own.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codec/checkpoint.hpp"
#include "common/bytes.hpp"
#include "scenario/corridor_world.hpp"
#include "shard/envelope.hpp"
#include "shard/integrity.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/parallel.hpp"

namespace blackdp {
namespace {

// ------------------------------------------------------------ wire + seals

TEST(EnvelopeWireTest, SerializeDeserializeRoundTrips) {
  const shard::Envelope envelope{3, 4, 7, 2, {0x10, 0x20, 0x30}};
  common::ByteWriter writer;
  shard::serializeEnvelope(envelope, writer);
  common::ByteReader reader{writer.bytes()};
  EXPECT_EQ(shard::deserializeEnvelope(reader), envelope);
  EXPECT_TRUE(reader.exhausted());
}

TEST(EnvelopeWireTest, BatchSealCoversEveryFieldOfEveryEnvelope) {
  std::vector<shard::Envelope> batch{{1, 2, 0, 7, {0xaa, 0xbb}},
                                     {1, 2, 1, 7, {}}};
  const shard::BatchSeal seal = shard::sealBatch(batch);
  EXPECT_EQ(seal.count, 2u);

  auto mutated = [&](auto&& mutate) {
    std::vector<shard::Envelope> copy = batch;
    mutate(copy);
    return shard::sealBatch(copy);
  };
  EXPECT_NE(mutated([](auto& b) { b[0].body[0] ^= 1; }), seal);
  EXPECT_NE(mutated([](auto& b) { b[0].seq = 9; }), seal);
  EXPECT_NE(mutated([](auto& b) { b[1].dstSegment = 3; }), seal);
  EXPECT_NE(mutated([](auto& b) { b[1].kind = 8; }), seal);
  EXPECT_NE(mutated([](auto& b) { b.pop_back(); }), seal);
  EXPECT_EQ(mutated([](auto&) {}), seal);
}

// ------------------------------------------------- typed barrier integrity

/// Emits a scripted outbox at epoch 0 and nothing afterwards.
class ScriptedWorld final : public shard::ShardWorld {
 public:
  explicit ScriptedWorld(std::vector<shard::Envelope> epoch0 = {})
      : epoch0_{std::move(epoch0)} {}

  void runEpoch(std::uint32_t epoch, std::span<const shard::Envelope> inbox,
                std::vector<shard::Envelope>& outbox) override {
    (void)inbox;
    if (epoch == 0) outbox = epoch0_;
  }

 private:
  std::vector<shard::Envelope> epoch0_;
};

/// Runs one epoch over plan contiguous(4, 2) with the two scripted outboxes
/// and returns the caught integrity violation (nullopt = no throw).
std::optional<shard::IntegrityViolation> violationFor(
    std::vector<shard::Envelope> low, std::vector<shard::Envelope> high,
    shard::ShardStats* statsOut = nullptr,
    shard::ShardedSimulation::Config config = {}) {
  const sim::ParallelRunner runner{2};
  const shard::ShardPlan plan = shard::ShardPlan::contiguous(4, 2);
  ScriptedWorld lowWorld{std::move(low)};
  ScriptedWorld highWorld{std::move(high)};
  shard::ShardedSimulation sharded{plan, {&lowWorld, &highWorld},
                                  runner.threadPool(), std::move(config)};
  std::optional<shard::IntegrityViolation> caught;
  try {
    sharded.runEpoch();
  } catch (const shard::ShardIntegrityError& e) {
    EXPECT_EQ(e.epoch(), 0u);
    caught = e.kind();
  }
  if (statsOut != nullptr) *statsOut = sharded.stats();
  return caught;
}

TEST(ShardIntegrityTest, HealthyExchangePassesWithZeroViolationCounters) {
  shard::ShardStats stats;
  // Segment 1 -> 2 and 3 -> 2: legal single-hop traffic in both directions.
  const auto caught = violationFor({{1, 2, 0, 7, {0x01}}},
                                   {{3, 2, 0, 7, {0x02}}}, &stats);
  EXPECT_FALSE(caught.has_value());
  EXPECT_EQ(stats.envelopesExchanged, 2u);
  EXPECT_EQ(stats.epochViolations, 0u);
  EXPECT_EQ(stats.seqViolations, 0u);
  EXPECT_EQ(stats.crcRejects, 0u);
}

TEST(ShardIntegrityTest, HopBoundViolationIsTypedAndCounted) {
  // Segment 0 -> 2 travels two segments: beyond the epoch-safety bound.
  // This was a hard assert before; now it must be a catchable typed error
  // (this test runs in release builds too, where asserts may compile out).
  shard::ShardStats stats;
  const auto caught = violationFor({{0, 2, 0, 7, {}}}, {}, &stats);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kEpochHops);
  EXPECT_EQ(stats.epochViolations, 1u);
  EXPECT_EQ(stats.seqViolations, 0u);
}

TEST(ShardIntegrityTest, ForeignSourceSegmentIsOutOfPlan) {
  // The low shard (segments 0-1) claims to emit from segment 2.
  shard::ShardStats stats;
  const auto caught = violationFor({{2, 3, 0, 7, {}}}, {}, &stats);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kOutOfPlan);
  EXPECT_EQ(stats.seqViolations, 1u);
}

TEST(ShardIntegrityTest, DestinationOutsideThePlanIsOutOfPlan) {
  shard::ShardStats stats;
  const auto caught = violationFor({{1, 9, 0, 7, {}}}, {}, &stats);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kOutOfPlan);
  EXPECT_EQ(stats.seqViolations, 1u);
}

TEST(ShardIntegrityTest, DuplicateSeqIsTypedAndCounted) {
  shard::ShardStats stats;
  const auto caught =
      violationFor({{1, 2, 0, 7, {}}, {1, 2, 0, 7, {}}}, {}, &stats);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kSeqDuplicate);
  EXPECT_EQ(stats.seqViolations, 1u);
}

TEST(ShardIntegrityTest, RegressedSeqIsAReorder) {
  shard::ShardStats stats;
  const auto caught =
      violationFor({{1, 2, 1, 7, {}}, {1, 2, 0, 7, {}}}, {}, &stats);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kSeqReorder);
  EXPECT_EQ(stats.seqViolations, 1u);
}

TEST(ShardIntegrityTest, MissingSeqIsAGapAtTheMergedCheck) {
  // seq 0 then 2 is emission-order ascending, so the per-outbox check
  // passes; the post-merge contiguity check must catch the missing seq 1.
  shard::ShardStats stats;
  const auto caught =
      violationFor({{1, 2, 0, 7, {}}, {1, 2, 2, 7, {}}}, {}, &stats);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kSeqGap);
  EXPECT_EQ(stats.seqViolations, 1u);
}

TEST(ShardIntegrityTest, TamperedBatchFailsItsSealAsCrcMismatch) {
  // Corrupt the batch AFTER the worker sealed it and BEFORE the coordinator
  // verifies: the model of bit rot between worker and barrier.
  shard::ShardedSimulation::Config config;
  config.tamperOutboxHook = [](std::uint32_t epoch, std::uint32_t s,
                               std::vector<shard::Envelope>& outbox) {
    (void)epoch;
    if (s == 0 && !outbox.empty()) outbox[0].body[0] ^= 0x40;
  };
  shard::ShardStats stats;
  const auto caught = violationFor({{1, 2, 0, 7, {0x01}}}, {}, &stats,
                                   std::move(config));
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, shard::IntegrityViolation::kCrcMismatch);
  EXPECT_EQ(stats.crcRejects, 1u);
  EXPECT_EQ(stats.seqViolations, 0u);
}

// --------------------------------------------- kill/resume byte identity

scenario::CorridorConfig tinyCorridor() {
  scenario::CorridorConfig config;
  config.seed = 7;
  config.segments = 4;
  config.vehicles = 240;
  config.attackerPermille = 100;  // 10% black holes: detections in 4 epochs
  config.departPermille = 100;
  return config;
}

TEST(CorridorCheckpointTest, KillAtEveryEpochBoundaryResumesByteIdentically) {
  const sim::ParallelRunner runner{4};
  const scenario::CorridorConfig config = tinyCorridor();
  constexpr std::uint32_t kEpochs = 4;

  scenario::CorridorWorld reference{config, 2, runner.threadPool()};
  std::vector<common::Bytes> checkpoints;  // boundary 1, 2, ..., kEpochs
  while (reference.nextEpoch() < kEpochs) {
    reference.step();
    checkpoints.push_back(reference.saveCheckpoint());
  }
  reference.finish();
  const std::string wantJson = reference.metricsJson();
  const std::string wantLog = reference.canonicalLog();

  for (std::size_t cut = 0; cut < checkpoints.size(); ++cut) {
    scenario::CorridorWorld resumed{config, 2, runner.threadPool()};
    const auto restored = resumed.restoreCheckpoint(checkpoints[cut]);
    ASSERT_TRUE(restored.ok()) << restored.error().code << ": "
                               << restored.error().detail;
    EXPECT_EQ(resumed.nextEpoch(), cut + 1);
    resumed.run(kEpochs);
    EXPECT_EQ(resumed.metricsJson(), wantJson) << "cut at boundary "
                                               << cut + 1;
    EXPECT_EQ(resumed.canonicalLog(), wantLog) << "cut at boundary "
                                               << cut + 1;
  }
}

TEST(CorridorCheckpointTest, ResumingUnderADifferentPartitionStillMatches) {
  // The checkpoint stores segment-addressed state, so restoring a 1-shard
  // checkpoint into a 1-shard world must reproduce what a 3-shard run says.
  const sim::ParallelRunner runner{3};
  const scenario::CorridorConfig config = tinyCorridor();

  scenario::CorridorWorld tri{config, 3, runner.threadPool()};
  tri.run(3);

  scenario::CorridorWorld mono{config, 1, runner.threadPool()};
  mono.step();
  const common::Bytes blob = mono.saveCheckpoint();
  scenario::CorridorWorld resumed{config, 1, runner.threadPool()};
  ASSERT_TRUE(resumed.restoreCheckpoint(blob).ok());
  resumed.run(3);
  EXPECT_EQ(resumed.metricsJson(), tri.metricsJson());
  EXPECT_EQ(resumed.canonicalLog(), tri.canonicalLog());
}

// ------------------------------------------------------ corruption corpus

scenario::CorridorConfig microCorridor() {
  scenario::CorridorConfig config;
  config.seed = 11;
  config.segments = 2;
  config.vehicles = 24;
  config.attackerPermille = 100;
  config.departPermille = 100;
  return config;
}

/// Re-seals a mutated envelope: strips the trailing CRC-32, applies the
/// mutation, and appends a freshly computed (valid) CRC, so the corruption
/// reaches the parser behind the CRC gate.
template <typename Fn>
common::Bytes resealed(common::Bytes blob, Fn mutate) {
  blob.resize(blob.size() - 4);
  mutate(blob);
  const std::uint32_t crc = codec::crc32(blob);
  for (int shift = 24; shift >= 0; shift -= 8) {
    blob.push_back((crc >> shift) & 0xff);
  }
  return blob;
}

class CorruptionCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runner_.emplace(1);
    scenario::CorridorWorld world{microCorridor(), 1,
                                  runner_->threadPool()};
    world.step();
    world.step();
    blob_ = world.saveCheckpoint();
    ASSERT_GT(blob_.size(), 32u);
  }

  /// Restores into a FRESH world (a failed restore tears the target).
  common::Status restoreFresh(std::span<const std::uint8_t> bytes) {
    scenario::CorridorWorld fresh{microCorridor(), 1, runner_->threadPool()};
    return fresh.restoreCheckpoint(bytes);
  }

  std::optional<sim::ParallelRunner> runner_;
  common::Bytes blob_;
};

TEST_F(CorruptionCorpusTest, IntactBlobRestores) {
  EXPECT_TRUE(restoreFresh(blob_).ok());
}

TEST_F(CorruptionCorpusTest, EveryPrefixTruncationIsATypedError) {
  for (std::size_t len = 0; len < blob_.size(); ++len) {
    const auto status =
        restoreFresh({blob_.data(), len});
    ASSERT_FALSE(status.ok()) << "prefix of " << len << " bytes restored";
    ASSERT_FALSE(status.error().code.empty());
  }
}

TEST_F(CorruptionCorpusTest, EveryByteFlipIsATypedError) {
  // CRC-32 detects all single-byte corruptions (and flipping a CRC byte
  // itself breaks the seal), so no flip may restore — and none may crash.
  common::Bytes corrupt = blob_;
  for (std::size_t i = 0; i < blob_.size(); ++i) {
    corrupt[i] ^= 0xff;
    const auto status = restoreFresh(corrupt);
    ASSERT_FALSE(status.ok()) << "byte " << i << " flip restored";
    corrupt[i] ^= 0xff;
  }
}

TEST_F(CorruptionCorpusTest, VersionSkewWithAValidCrcIsBadVersion) {
  const common::Bytes skewed = resealed(blob_, [](common::Bytes& b) {
    // Schema version lives at offset 4..5 (big-endian u16).
    b[4] = 0;
    b[5] = static_cast<std::uint8_t>(codec::kCheckpointVersion + 1);
  });
  const auto status = restoreFresh(skewed);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "bad-version");
}

common::Bytes rebuilt(const codec::Checkpoint& checkpoint,
                      const std::function<void(
                          std::vector<codec::CheckpointSection>&)>& surgery) {
  std::vector<codec::CheckpointSection> sections = checkpoint.sections;
  surgery(sections);
  codec::CheckpointBuilder builder;
  for (codec::CheckpointSection& section : sections) {
    builder.add(static_cast<codec::CheckpointTag>(section.tag),
                std::move(section.body));
  }
  return builder.finish();
}

TEST_F(CorruptionCorpusTest, StructuralSurgeryIsAlwaysATypedError) {
  const auto decoded = codec::decodeCheckpoint(blob_);
  ASSERT_TRUE(decoded.ok());
  const codec::Checkpoint& checkpoint = decoded.value();
  const auto metaTag =
      static_cast<std::uint16_t>(codec::CheckpointTag::kCorridorMeta);
  const auto shardTag =
      static_cast<std::uint16_t>(codec::CheckpointTag::kCorridorShard);
  const auto dropTag = [](std::vector<codec::CheckpointSection>& sections,
                          std::uint16_t tag) {
    std::erase_if(sections,
                  [&](const auto& section) { return section.tag == tag; });
  };

  // A flipped config-hash byte behind a valid CRC: the resume guard.
  {
    const auto status = restoreFresh(rebuilt(checkpoint, [&](auto& sections) {
      for (auto& section : sections) {
        if (section.tag == metaTag) section.body[0] ^= 0x01;
      }
    }));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, "config-mismatch");
  }
  // Missing meta section.
  {
    const auto status = restoreFresh(rebuilt(
        checkpoint, [&](auto& sections) { dropTag(sections, metaTag); }));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, "malformed");
  }
  // Missing shard section (count no longer matches the plan).
  {
    const auto status = restoreFresh(rebuilt(
        checkpoint, [&](auto& sections) { dropTag(sections, shardTag); }));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, "malformed");
  }
  // Truncated shard body behind a valid envelope CRC: the inner parser's
  // underrun handling.
  {
    const auto status = restoreFresh(rebuilt(checkpoint, [&](auto& sections) {
      for (auto& section : sections) {
        if (section.tag == shardTag) section.body.pop_back();
      }
    }));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, "malformed");
  }
  // Missing exchange section.
  {
    const auto status = restoreFresh(rebuilt(checkpoint, [&](auto& sections) {
      dropTag(sections, static_cast<std::uint16_t>(
                            codec::CheckpointTag::kCorridorExchange));
    }));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, "malformed");
  }
}

TEST_F(CorruptionCorpusTest, CheckpointFromADifferentConfigIsRejected) {
  scenario::CorridorConfig other = microCorridor();
  other.vehicles = 25;
  scenario::CorridorWorld world{other, 1, runner_->threadPool()};
  world.step();
  const common::Bytes foreign = world.saveCheckpoint();
  const auto status = restoreFresh(foreign);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "config-mismatch");
}

// --------------------------------------------------- supervisor restarts

TEST(ShardSupervisionTest, CrashedShardConvergesToTheNoFaultSurfaces) {
  const sim::ParallelRunner runner{4};
  const scenario::CorridorConfig clean = tinyCorridor();

  scenario::CorridorWorld reference{clean, 4, runner.threadPool()};
  reference.run(4);

  // Crash a shard whose replayed inbox is provably non-empty: with 4
  // segments across 4 shards every segment is its own shard, so any
  // envelope APPLIED at epoch 2 (migrate-in / handoff-in / revocation in
  // the log) pins a non-empty epoch-2 inbox for that segment's shard. A
  // crash at epoch 3 restores the epoch-2 snapshot and replays exactly
  // that inbox.
  std::optional<std::uint32_t> crashShard;
  {
    const std::string log = reference.canonicalLog();
    std::size_t pos = 0;
    while (pos < log.size() && !crashShard.has_value()) {
      const std::size_t end = log.find('\n', pos);
      const std::string line =
          log.substr(pos, end == std::string::npos ? end : end - pos);
      pos = end == std::string::npos ? log.size() : end + 1;
      std::uint32_t segment = 0;
      std::uint32_t epoch = 0;
      if (std::sscanf(line.c_str(), "seg=%u epoch=%u", &segment, &epoch) != 2 ||
          epoch != 2) {
        continue;
      }
      if (line.find(" migrate-in ") != std::string::npos ||
          line.find(" handoff-in ") != std::string::npos ||
          line.find(" revocation ") != std::string::npos) {
        crashShard = segment;
      }
    }
  }
  ASSERT_TRUE(crashShard.has_value())
      << "no cross-shard envelope applied at epoch 2; pick another epoch";

  scenario::CorridorConfig faulty = clean;
  faulty.faults.shardCrashes.push_back({3, *crashShard});
  scenario::CorridorWorld supervised{faulty, 4, runner.threadPool()};
  supervised.run(4);

  // The restart replayed the retained inboxes, so the recovered shard is
  // indistinguishable on both deterministic surfaces.
  EXPECT_EQ(supervised.metricsJson(), reference.metricsJson());
  EXPECT_EQ(supervised.canonicalLog(), reference.canonicalLog());

  const shard::ShardStats& stats = supervised.shardStats();
  EXPECT_EQ(stats.shardRestarts, 1u);
  EXPECT_GT(stats.envelopesReplayed, 0u);
  EXPECT_GT(stats.recoveryEpochs, 0u);

  // The integrity counters are part of the metrics surface (and zero on a
  // healthy run); the recovery counters are machine-plan-dependent and
  // deliberately are NOT, or the identity above could not hold.
  const std::string json = supervised.metricsJson();
  EXPECT_NE(json.find("shard.crc_rejects"), std::string::npos);
  EXPECT_NE(json.find("shard.epoch_violations"), std::string::npos);
  EXPECT_NE(json.find("shard.seq_violations"), std::string::npos);
  EXPECT_EQ(json.find("shard_restarts"), std::string::npos);
}

// ------------------------------------------------- degraded-mode recovery

struct RevocationLine {
  std::uint32_t segment{0};
  std::uint32_t epoch{0};
  std::uint64_t suspect{0};
  std::string text;
};

std::optional<RevocationLine> firstRevocation(const std::string& log) {
  std::size_t pos = 0;
  while (pos < log.size()) {
    const std::size_t end = log.find('\n', pos);
    const std::string line =
        log.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? log.size() : end + 1;
    if (line.find(" revocation ") == std::string::npos) continue;
    RevocationLine parsed;
    parsed.text = line;
    unsigned long long suspect = 0;
    if (std::sscanf(line.c_str(), "seg=%u epoch=%u revocation a=%llu",
                    &parsed.segment, &parsed.epoch, &suspect) == 3) {
      parsed.suspect = suspect;
      return parsed;
    }
  }
  return std::nullopt;
}

TEST(DegradedModeTest, RevocationGossipIsolatesWhileTheRsuIsDark) {
  const sim::ParallelRunner runner{2};
  const scenario::CorridorConfig clean = tinyCorridor();
  constexpr std::uint32_t kEpochs = 6;

  scenario::CorridorWorld reference{clean, 1, runner.threadPool()};
  reference.run(kEpochs);
  const auto revocation = firstRevocation(reference.canonicalLog());
  ASSERT_TRUE(revocation.has_value())
      << "reference run produced no revocation gossip; extend kEpochs";

  // Kill the receiving segment's RSU from the revocation epoch onwards: the
  // envelope was emitted by a NEIGHBOUR, so it must still apply.
  scenario::CorridorConfig dark = clean;
  dark.faults.rsuOutages.push_back(
      {revocation->segment, revocation->epoch, kEpochs});
  scenario::CorridorWorld degraded{dark, 1, runner.threadPool()};
  degraded.run(kEpochs);

  EXPECT_NE(degraded.canonicalLog().find(revocation->text),
            std::string::npos)
      << "revocation did not apply while the RSU was dark";

  bool sawSuspectIsolated = false;
  degraded.forEachSegment([&](std::uint32_t segment,
                              const std::vector<common::Address>& isolated,
                              const core::LiteDetector& detector) {
    (void)detector;
    if (segment != revocation->segment) return;
    for (const common::Address address : isolated) {
      sawSuspectIsolated |= address.value() == revocation->suspect;
    }
  });
  EXPECT_TRUE(sawSuspectIsolated);

  // Dark means dark: the segment runs no detection of its own during the
  // outage — no digests implies no chains, reports, probes, or verdicts.
  const std::string log = degraded.canonicalLog();
  std::size_t pos = 0;
  while (pos < log.size()) {
    const std::size_t end = log.find('\n', pos);
    const std::string line =
        log.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? log.size() : end + 1;
    std::uint32_t segment = 0;
    std::uint32_t epoch = 0;
    if (std::sscanf(line.c_str(), "seg=%u epoch=%u", &segment, &epoch) != 2) {
      continue;
    }
    if (segment != revocation->segment || epoch < revocation->epoch) continue;
    EXPECT_EQ(line.find(" report "), std::string::npos) << line;
    EXPECT_EQ(line.find(" probe "), std::string::npos) << line;
    EXPECT_EQ(line.find(" verdict "), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace blackdp
