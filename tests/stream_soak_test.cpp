// Streaming detector-service mode: checkpoint/restore byte-identity
// (including a kill-at-random-epoch torture loop), memory-watermark
// invariants under flood, trace record/replay equivalence, and the
// stream-soak harness's manifest + resume machinery.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "codec/checkpoint.hpp"
#include "obs/json.hpp"
#include "scenario/stream_world.hpp"
#include "sim/rng.hpp"
#include "soak/stream_soak.hpp"

namespace blackdp {
namespace {

scenario::StreamConfig smallConfig(std::uint64_t seed = 77) {
  scenario::StreamConfig config;
  config.seed = seed;
  config.clusters = 2;
  config.dreqsPerEpoch = 4;
  return config;
}

std::uint64_t metricsVerdictHash(const std::string& metricsJson) {
  const auto object = obs::FlatJsonObject::parse(metricsJson);
  EXPECT_TRUE(object.has_value());
  const auto hash = object ? object->u64("verdict_hash") : std::nullopt;
  EXPECT_TRUE(hash.has_value());
  return hash.value_or(0);
}

// --- determinism of the injection plan --------------------------------------

TEST(StreamWorldTest, PlanEpochIsPureInSeedAndEpoch) {
  const scenario::StreamWorld a{smallConfig()};
  scenario::StreamWorld b{smallConfig()};
  EXPECT_EQ(a.planEpoch(0), b.planEpoch(0));
  EXPECT_EQ(a.planEpoch(7), b.planEpoch(7));
  // Running epochs must not perturb the plan (it is state-independent, so a
  // resumed run plans exactly what the uninterrupted run planned).
  const auto plan3 = b.planEpoch(3);
  b.runEpoch();
  b.runEpoch();
  EXPECT_EQ(b.planEpoch(3), plan3);
  // Different seeds diverge.
  const scenario::StreamWorld c{smallConfig(78)};
  EXPECT_NE(c.planEpoch(0), a.planEpoch(0));
}

TEST(StreamWorldTest, InjectionSpecJsonRoundTrips) {
  const scenario::StreamWorld world{smallConfig()};
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    for (const scenario::InjectionSpec& spec : world.planEpoch(epoch)) {
      std::string line;
      scenario::appendInjectionJson(line, epoch, spec);
      const auto parsed = scenario::parseInjectionJson(line);
      ASSERT_TRUE(parsed.has_value()) << line;
      EXPECT_EQ(parsed->first, epoch);
      EXPECT_EQ(parsed->second, spec);
    }
  }
  EXPECT_FALSE(scenario::parseInjectionJson("not json").has_value());
  EXPECT_FALSE(scenario::parseInjectionJson("{\"epoch\":1}").has_value());
}

TEST(StreamWorldTest, ReplayFromSpecsMatchesLiveGeneration) {
  scenario::StreamWorld live{smallConfig()};
  scenario::StreamWorld replayed{smallConfig()};
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto specs = live.planEpoch(live.nextEpoch());
    live.runEpoch();
    replayed.runEpochFromSpecs(specs);
  }
  EXPECT_EQ(live.metrics().toJson(), replayed.metrics().toJson());
  EXPECT_EQ(live.saveCheckpoint(), replayed.saveCheckpoint());
}

// --- checkpoint / restore ---------------------------------------------------

// The tentpole pin: kill the world at a random epoch boundary, restore the
// checkpoint into a freshly built world, run to the end — every byte of the
// final checkpoint and the metrics JSON must match an uninterrupted run.
TEST(StreamCheckpointTest, KillAtRandomEpochRestoresByteIdentically) {
  constexpr std::uint64_t kEpochs = 6;
  for (std::uint64_t round = 1; round <= 3; ++round) {
    const scenario::StreamConfig config = smallConfig(900 + round);

    scenario::StreamWorld uninterrupted{config};
    for (std::uint64_t e = 0; e < kEpochs; ++e) uninterrupted.runEpoch();
    const common::Bytes finalExpected = uninterrupted.saveCheckpoint();

    sim::Rng rng{round};
    const auto killAt = static_cast<std::uint64_t>(
        rng.uniformInt(1, static_cast<std::int64_t>(kEpochs) - 1));
    scenario::StreamWorld victim{config};
    for (std::uint64_t e = 0; e < killAt; ++e) victim.runEpoch();
    const common::Bytes blob = victim.saveCheckpoint();

    scenario::StreamWorld resumed{config};
    const common::Status restored = resumed.restoreCheckpoint(blob);
    ASSERT_TRUE(restored.ok())
        << restored.error().code << ": " << restored.error().detail;
    EXPECT_EQ(resumed.nextEpoch(), killAt);
    for (std::uint64_t e = killAt; e < kEpochs; ++e) resumed.runEpoch();

    EXPECT_EQ(resumed.saveCheckpoint(), finalExpected)
        << "round " << round << " killed at epoch " << killAt;
    EXPECT_EQ(resumed.metrics().toJson(), uninterrupted.metrics().toJson())
        << "round " << round << " killed at epoch " << killAt;
  }
}

TEST(StreamCheckpointTest, RestoreRejectsConfigMismatch) {
  scenario::StreamWorld source{smallConfig(1)};
  source.runEpoch();
  const common::Bytes blob = source.saveCheckpoint();

  scenario::StreamWorld differentSeed{smallConfig(2)};
  const common::Status restored = differentSeed.restoreCheckpoint(blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, "config-mismatch");
}

TEST(StreamCheckpointTest, RestoreRejectsCorruption) {
  scenario::StreamWorld source{smallConfig()};
  source.runEpoch();
  common::Bytes blob = source.saveCheckpoint();
  blob[blob.size() / 2] ^= 0x40;

  scenario::StreamWorld target{smallConfig()};
  const common::Status restored = target.restoreCheckpoint(blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, "bad-crc");
}

TEST(StreamCheckpointTest, RestoreRejectsTruncation) {
  scenario::StreamWorld source{smallConfig()};
  source.runEpoch();
  common::Bytes blob = source.saveCheckpoint();
  blob.resize(blob.size() / 2);

  scenario::StreamWorld target{smallConfig()};
  const common::Status restored = target.restoreCheckpoint(blob);
  ASSERT_FALSE(restored.ok());
  // Mid-structure cuts surface as CRC or truncation errors, never UB.
  EXPECT_TRUE(restored.error().code == "bad-crc" ||
              restored.error().code == "truncated")
      << restored.error().code;
}

// --- bounded memory under flood ---------------------------------------------

TEST(StreamSoakTest, WatermarkHoldsUnderFloodAndEvictionActuallyRuns) {
  scenario::StreamConfig config = smallConfig(5);
  config.dreqsPerEpoch = 12;
  // Tight completed-record cap so the flood overflows it well within the
  // test's horizon (most of the flood is rate-limited/rejected by design).
  config.detector.completedCap = 64;
  scenario::StreamWorld world{config};
  for (int epoch = 0; epoch < 40; ++epoch) {
    world.runEpoch();
    const std::vector<std::string> violations = world.checkInvariants();
    EXPECT_TRUE(violations.empty())
        << "epoch " << epoch << ": " << violations.front();
  }
  // The bound must come from eviction doing work, not from the stream being
  // too small to ever hit the caps: enough sessions completed to overflow
  // the per-detector completed-record cap, so the cap had to evict.
  const scenario::StreamMetrics metrics = world.metrics();
  EXPECT_GT(metrics.completedTotal,
            static_cast<std::uint64_t>(config.detector.completedCap) *
                config.clusters);
  EXPECT_GT(metrics.completedEvicted, 0u);
  EXPECT_LE(metrics.completedRetained,
            static_cast<std::uint64_t>(config.detector.completedCap) *
                config.clusters);
  // Gauges stay pinned to the population, not the stream length. (The idle-
  // ledger TTL never fires here — every reporter stays active for the whole
  // soak, which is exactly why the gauge bound matters.)
  const std::uint64_t reporterCap =
      static_cast<std::uint64_t>(config.population.honestReporters +
                                 config.population.liarReporters) *
      config.clusters;
  EXPECT_LE(metrics.trackedReporters, reporterCap);
  EXPECT_LE(metrics.noncesCached,
            reporterCap * config.detector.hardening.ledger.nonceCacheMax);
}

// --- stream-soak harness (manifest, kill emulation, resume) -----------------

class StreamSoakHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs fixture cases as concurrent processes,
    // and a shared directory makes their SetUp remove_all race.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path{::testing::TempDir()} /
           (std::string{"blackdp_stream_soak_"} + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string sub(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(StreamSoakHarnessTest, WritesCheckpointsWithAVerifiableManifest) {
  soak::StreamSoakOptions options;
  options.stream = smallConfig(11);
  options.epochs = 6;
  options.checkpointEvery = 2;
  options.checkpointDir = sub("ckpts");
  const soak::StreamSoakResult result = runStreamSoak(options);
  ASSERT_TRUE(result.passed())
      << result.violations.front().invariant << ": "
      << result.violations.front().detail;
  EXPECT_EQ(result.endEpoch, 6u);

  const std::vector<soak::ManifestEntry> manifest =
      soak::readManifest(options.checkpointDir);
  ASSERT_EQ(manifest.size(), 3u);
  for (const soak::ManifestEntry& entry : manifest) {
    const auto blob =
        codec::readFile(options.checkpointDir + "/" + entry.file);
    ASSERT_TRUE(blob.ok()) << entry.file;
    EXPECT_EQ(blob.value().size(), entry.bytes);
    EXPECT_EQ(codec::crc32(blob.value()), entry.crc32);
    EXPECT_EQ(entry.seed, options.stream.seed);
    EXPECT_TRUE(codec::decodeCheckpoint(blob.value()).ok());
  }
  EXPECT_EQ(manifest.back().epoch, 6u);
  EXPECT_EQ(result.lastCheckpointPath,
            options.checkpointDir + "/" + manifest.back().file);
}

TEST_F(StreamSoakHarnessTest, KillAndResumeMatchesUninterruptedRun) {
  soak::StreamSoakOptions uninterrupted;
  uninterrupted.stream = smallConfig(12);
  uninterrupted.epochs = 6;
  uninterrupted.checkpointEvery = 2;
  uninterrupted.checkpointDir = sub("a");
  const soak::StreamSoakResult full = runStreamSoak(uninterrupted);
  ASSERT_TRUE(full.passed());

  soak::StreamSoakOptions killed = uninterrupted;
  killed.checkpointDir = sub("b");
  killed.stopAfter = 3;  // dies between checkpoints: epoch 3, last ckpt at 2
  const soak::StreamSoakResult first = runStreamSoak(killed);
  ASSERT_TRUE(first.passed());
  EXPECT_EQ(first.endEpoch, 3u);

  soak::StreamSoakOptions resumed = killed;
  resumed.stopAfter = 0;
  resumed.resume = true;
  const soak::StreamSoakResult second = runStreamSoak(resumed);
  ASSERT_TRUE(second.passed());
  EXPECT_EQ(second.startEpoch, 2u);  // resumed from the epoch-2 checkpoint
  EXPECT_EQ(second.endEpoch, 6u);

  EXPECT_EQ(second.metricsJson, full.metricsJson);
  const auto a = codec::readFile(sub("a") + "/ckpt-000006.bdpc");
  const auto b = codec::readFile(sub("b") + "/ckpt-000006.bdpc");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(StreamSoakHarnessTest, ResumeWithMismatchedSeedFailsTyped) {
  soak::StreamSoakOptions options;
  options.stream = smallConfig(13);
  options.epochs = 4;
  options.checkpointEvery = 2;
  options.checkpointDir = sub("ckpts");
  ASSERT_TRUE(runStreamSoak(options).passed());

  options.resume = true;
  options.stream.seed = 14;
  const soak::StreamSoakResult result = runStreamSoak(options);
  ASSERT_FALSE(result.passed());
  EXPECT_EQ(result.violations.front().invariant, "checkpoint-resume");
}

TEST_F(StreamSoakHarnessTest, ResumeFromEmptyDirFailsTyped) {
  soak::StreamSoakOptions options;
  options.stream = smallConfig(15);
  options.epochs = 4;
  options.resume = true;
  options.checkpointDir = sub("nothing-here");
  const soak::StreamSoakResult result = runStreamSoak(options);
  ASSERT_FALSE(result.passed());
  EXPECT_EQ(result.violations.front().invariant, "checkpoint-resume");
}

TEST_F(StreamSoakHarnessTest, TornManifestLineIsSkippedOnResume) {
  soak::StreamSoakOptions options;
  options.stream = smallConfig(16);
  options.epochs = 4;
  options.checkpointEvery = 2;
  options.checkpointDir = sub("ckpts");
  ASSERT_TRUE(runStreamSoak(options).passed());
  {
    // Emulate a kill mid-append: a torn, half-written trailing line.
    std::ofstream out{soak::manifestPath(options.checkpointDir),
                      std::ios::app};
    out << "{\"epoch\":99,\"file\":\"ckpt-0000";
  }
  const std::vector<soak::ManifestEntry> manifest =
      soak::readManifest(options.checkpointDir);
  ASSERT_EQ(manifest.size(), 2u);
  EXPECT_EQ(manifest.back().epoch, 4u);

  options.resume = true;
  options.epochs = 5;
  const soak::StreamSoakResult result = runStreamSoak(options);
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.startEpoch, 4u);
}

TEST_F(StreamSoakHarnessTest, RecordedTraceReplaysToTheSameVerdictTimeline) {
  soak::StreamSoakOptions options;
  options.stream = smallConfig(17);
  options.epochs = 5;
  options.tracePath = sub("trace.jsonl");
  const soak::StreamSoakResult result = runStreamSoak(options);
  ASSERT_TRUE(result.passed());
  const std::uint64_t recordedHash = metricsVerdictHash(result.metricsJson);

  // Re-drive the recorded trace through a fresh world (what replay_serve
  // does) and require the identical verdict timeline hash.
  std::ifstream in{options.tracePath};
  ASSERT_TRUE(in.is_open());
  std::vector<std::vector<scenario::InjectionSpec>> epochs(options.epochs);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const auto parsed = scenario::parseInjectionJson(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    ASSERT_LT(parsed->first, epochs.size());
    epochs[parsed->first].push_back(parsed->second);
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(options.epochs) *
                       options.stream.clusters * options.stream.dreqsPerEpoch);

  scenario::StreamWorld replayed{options.stream};
  for (const auto& specs : epochs) replayed.runEpochFromSpecs(specs);
  EXPECT_EQ(replayed.metrics().verdictHash, recordedHash);
}

}  // namespace
}  // namespace blackdp
