// AODV sequence numbers, routing-table rules, and message canonical bytes.
#include <gtest/gtest.h>

#include "aodv/messages.hpp"
#include "aodv/routing_table.hpp"
#include "aodv/seqnum.hpp"

namespace blackdp::aodv {
namespace {

// ----------------------------------------------------------------- seqnum

TEST(SeqNumTest, BasicOrdering) {
  EXPECT_TRUE(seqNewer(2, 1));
  EXPECT_FALSE(seqNewer(1, 2));
  EXPECT_FALSE(seqNewer(5, 5));
}

TEST(SeqNumTest, AtLeastIncludesEqual) {
  EXPECT_TRUE(seqAtLeast(5, 5));
  EXPECT_TRUE(seqAtLeast(6, 5));
  EXPECT_FALSE(seqAtLeast(4, 5));
}

TEST(SeqNumTest, RolloverComparesCircularly) {
  // RFC 3561 §6.1: signed 32-bit rollover arithmetic.
  const SeqNum nearMax = 0xFFFFFFF0u;
  EXPECT_TRUE(seqNewer(3, nearMax));   // wrapped value is fresher
  EXPECT_FALSE(seqNewer(nearMax, 3));
}

class SeqNumProperty : public ::testing::TestWithParam<SeqNum> {};

TEST_P(SeqNumProperty, SuccessorIsAlwaysNewer) {
  const SeqNum s = GetParam();
  EXPECT_TRUE(seqNewer(s + 1, s));
  EXPECT_FALSE(seqNewer(s, s + 1));
  EXPECT_TRUE(seqAtLeast(s + 1, s));
}

INSTANTIATE_TEST_SUITE_P(Values, SeqNumProperty,
                         ::testing::Values(0u, 1u, 100u, 0x7FFFFFFFu,
                                           0x80000000u, 0xFFFFFFFFu));

// ----------------------------------------------------------- routing table

RouteEntry makeEntry(std::uint64_t dest, std::uint64_t nextHop,
                     std::uint8_t hops, SeqNum seq, std::int64_t expiresUs,
                     bool validSeq = true) {
  RouteEntry e;
  e.destination = common::Address{dest};
  e.nextHop = common::Address{nextHop};
  e.hopCount = hops;
  e.destSeq = seq;
  e.validSeq = validSeq;
  e.expiresAt = sim::TimePoint::fromUs(expiresUs);
  return e;
}

const sim::TimePoint kNow = sim::TimePoint::fromUs(0);

TEST(RoutingTableTest, InstallAndLookup) {
  RoutingTable table;
  EXPECT_TRUE(table.update(makeEntry(1, 2, 1, 10, 1000), kNow));
  const auto route = table.activeRoute(common::Address{1}, kNow);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nextHop, common::Address{2});
  EXPECT_EQ(route->destSeq, 10u);
}

TEST(RoutingTableTest, MissingDestination) {
  RoutingTable table;
  EXPECT_FALSE(table.activeRoute(common::Address{9}, kNow).has_value());
  EXPECT_EQ(table.find(common::Address{9}), nullptr);
}

TEST(RoutingTableTest, FresherSequenceNumberWins) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 10, 1000), kNow);
  EXPECT_TRUE(table.update(makeEntry(1, 3, 5, 11, 1000), kNow));
  EXPECT_EQ(table.activeRoute(common::Address{1}, kNow)->nextHop,
            common::Address{3});
}

TEST(RoutingTableTest, StalerSequenceNumberLoses) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 10, 1000), kNow);
  EXPECT_FALSE(table.update(makeEntry(1, 3, 1, 9, 1000), kNow));
  EXPECT_EQ(table.activeRoute(common::Address{1}, kNow)->nextHop,
            common::Address{2});
}

TEST(RoutingTableTest, EqualSeqFewerHopsWins) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 5, 10, 1000), kNow);
  EXPECT_TRUE(table.update(makeEntry(1, 3, 2, 10, 1000), kNow));
  EXPECT_EQ(table.activeRoute(common::Address{1}, kNow)->hopCount, 2);
}

TEST(RoutingTableTest, EqualSeqMoreHopsLoses) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 2, 10, 1000), kNow);
  EXPECT_FALSE(table.update(makeEntry(1, 3, 5, 10, 1000), kNow));
}

TEST(RoutingTableTest, AnythingReplacesExpiredRoute) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 100, 50), kNow);
  const sim::TimePoint later = sim::TimePoint::fromUs(60);
  EXPECT_TRUE(table.update(makeEntry(1, 3, 9, 1, 1000), later));
}

TEST(RoutingTableTest, AnythingReplacesInvalidRoute) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 100, 1000), kNow);
  table.invalidate(common::Address{1});
  EXPECT_TRUE(table.update(makeEntry(1, 3, 9, 1, 1000), kNow));
  EXPECT_TRUE(table.activeRoute(common::Address{1}, kNow).has_value());
}

TEST(RoutingTableTest, ValidSeqBeatsUnknownSeq) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 0, 1000, /*validSeq=*/false), kNow);
  EXPECT_TRUE(table.update(makeEntry(1, 3, 4, 7, 1000, true), kNow));
  EXPECT_TRUE(table.activeRoute(common::Address{1}, kNow)->validSeq);
}

TEST(RoutingTableTest, InvalidateBumpsSequenceNumber) {
  // RFC 3561 §6.11: stale information must not resurrect a dead route.
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 10, 1000), kNow);
  table.invalidate(common::Address{1});
  const RouteEntry* entry = table.find(common::Address{1});
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->valid);
  EXPECT_EQ(entry->destSeq, 11u);
  EXPECT_FALSE(table.activeRoute(common::Address{1}, kNow).has_value());
}

TEST(RoutingTableTest, InvalidateUnknownIsNoOp) {
  RoutingTable table;
  EXPECT_NO_THROW(table.invalidate(common::Address{9}));
}

TEST(RoutingTableTest, ExpiredRouteIsNotActive) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 10, 100), kNow);
  EXPECT_TRUE(table.activeRoute(common::Address{1},
                                sim::TimePoint::fromUs(99)).has_value());
  EXPECT_FALSE(table.activeRoute(common::Address{1},
                                 sim::TimePoint::fromUs(100)).has_value());
}

TEST(RoutingTableTest, PurgeExpiredRemovesEntries) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 10, 100), kNow);
  (void)table.update(makeEntry(2, 3, 1, 10, 500), kNow);
  EXPECT_EQ(table.purgeExpired(sim::TimePoint::fromUs(200)), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.contains(common::Address{1}));
  EXPECT_TRUE(table.contains(common::Address{2}));
}

TEST(RoutingTableTest, InstallOverwritesUnconditionally) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 100, 1000), kNow);
  table.install(makeEntry(1, 9, 9, 1, 1000));
  EXPECT_EQ(table.activeRoute(common::Address{1}, kNow)->nextHop,
            common::Address{9});
}

TEST(RoutingTableTest, SnapshotListsEverything) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 10, 1000), kNow);
  (void)table.update(makeEntry(2, 3, 1, 10, 1000), kNow);
  EXPECT_EQ(table.snapshot().size(), 2u);
}

// The black hole premise: a forged high sequence number always captures the
// route, regardless of the honest route's hop count.
TEST(RoutingTableTest, ForgedHighSeqCapturesRoute) {
  RoutingTable table;
  (void)table.update(makeEntry(1, 2, 1, 75, 1000), kNow);   // honest, 1 hop
  EXPECT_TRUE(table.update(makeEntry(1, 66, 4, 200, 1000), kNow));  // forged
  EXPECT_EQ(table.activeRoute(common::Address{1}, kNow)->nextHop,
            common::Address{66});
}

// ---------------------------------------------------------------- messages

TEST(MessagesTest, RreqCanonicalBytesCoverIdentityFields) {
  RouteRequest a;
  a.rreqId = common::RreqId{1};
  a.origin = common::Address{10};
  a.destination = common::Address{20};
  RouteRequest b = a;
  EXPECT_EQ(a.canonicalBytes(), b.canonicalBytes());
  b.destSeq = 99;
  EXPECT_NE(a.canonicalBytes(), b.canonicalBytes());
}

TEST(MessagesTest, RrepCanonicalBytesExcludeMutableHopCount) {
  RouteReply a;
  a.destSeq = 42;
  a.replier = common::Address{7};
  RouteReply b = a;
  b.hopCount = 9;  // incremented at every forwarding hop
  EXPECT_EQ(a.canonicalBytes(), b.canonicalBytes());
}

TEST(MessagesTest, RrepCanonicalBytesCoverSignedFields) {
  RouteReply a;
  a.destSeq = 42;
  RouteReply b = a;
  b.destSeq = 43;
  EXPECT_NE(a.canonicalBytes(), b.canonicalBytes());
  RouteReply c = a;
  c.claimedNextHop = common::Address{5};
  EXPECT_NE(a.canonicalBytes(), c.canonicalBytes());
}

TEST(MessagesTest, TypeNamesAreStable) {
  EXPECT_EQ(RouteRequest{}.typeName(), "rreq");
  EXPECT_EQ(RouteReply{}.typeName(), "rrep");
  EXPECT_EQ(RouteError{}.typeName(), "rerr");
  EXPECT_EQ(DataPacket{}.typeName(), "data");
}

TEST(MessagesTest, SecureRrepIsLargerOnAir) {
  RouteReply plain;
  RouteReply secure;
  secure.envelope = SecureEnvelope{};
  EXPECT_GT(secure.sizeBytes(), plain.sizeBytes());
}

TEST(MessagesTest, DataPacketSizeIncludesInner) {
  DataPacket outer;
  outer.bodyBytes = 0;
  const std::uint32_t bare = outer.sizeBytes();
  outer.inner = std::make_shared<RouteRequest>();
  EXPECT_GT(outer.sizeBytes(), bare);
}

}  // namespace
}  // namespace blackdp::aodv
