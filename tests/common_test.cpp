#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/logging.hpp"
#include "common/result.hpp"

namespace blackdp::common {
namespace {

// ----------------------------------------------------------------- StrongId

TEST(StrongIdTest, DefaultConstructsToZero) {
  EXPECT_EQ(NodeId{}.value(), 0u);
  EXPECT_EQ(Address{}.value(), 0u);
}

TEST(StrongIdTest, ValueRoundTrips) {
  const NodeId id{42};
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongIdTest, EqualityComparesValues) {
  EXPECT_EQ(NodeId{7}, NodeId{7});
  EXPECT_NE(NodeId{7}, NodeId{8});
}

TEST(StrongIdTest, OrderingComparesValues) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_GT(ClusterId{9}, ClusterId{3});
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, ClusterId>);
  static_assert(!std::is_same_v<Address, CertSerial>);
}

TEST(StrongIdTest, HashableInUnorderedContainers) {
  std::unordered_set<Address> set;
  set.insert(Address{1});
  set.insert(Address{2});
  set.insert(Address{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, StreamsItsValue) {
  std::ostringstream os;
  os << NodeId{123};
  EXPECT_EQ(os.str(), "123");
}

TEST(StrongIdTest, BroadcastAndNullAddressesAreDistinct) {
  EXPECT_NE(kBroadcastAddress, kNullAddress);
  EXPECT_EQ(kNullAddress.value(), 0u);
}

// ------------------------------------------------------------------ Result

TEST(ResultTest, HoldsValue) {
  const Result<int> r{7};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r{Error{"nope", "detail"}};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "nope");
  EXPECT_EQ(r.error().detail, "detail");
}

TEST(ResultTest, ValueOnErrorThrows) {
  const Result<int> r{Error{"nope", ""}};
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, ErrorOnValueThrows) {
  const Result<int> r{1};
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(ResultTest, BoolConversionTracksState) {
  EXPECT_TRUE(static_cast<bool>(Result<int>{1}));
  EXPECT_FALSE(static_cast<bool>(Result<int>{Error{"e", ""}}));
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r{std::string{"payload"}};
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusTest, DefaultIsSuccess) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW((void)s.error(), std::logic_error);
}

TEST(StatusTest, ErrorState) {
  const Status s{Error{"bad", "why"}};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "bad");
}

// ------------------------------------------------------------------- bytes

TEST(BytesTest, WritesBigEndianU32) {
  ByteWriter w;
  w.writeU32(0x01020304u);
  EXPECT_EQ(w.bytes(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(BytesTest, WritesBigEndianU64) {
  ByteWriter w;
  w.writeU64(0x0102030405060708ull);
  EXPECT_EQ(w.bytes(),
            (Bytes{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}));
}

TEST(BytesTest, RoundTripsAllPrimitives) {
  ByteWriter w;
  w.writeU8(0xAB);
  w.writeU16(0xBEEF);
  w.writeU32(0xDEADBEEF);
  w.writeU64(0x0123456789ABCDEFull);
  w.writeI64(-42);
  w.writeBool(true);
  w.writeBool(false);
  w.writeString("hello");
  w.writeBlob(Bytes{1, 2, 3});

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.readU8(), 0xAB);
  EXPECT_EQ(r.readU16(), 0xBEEF);
  EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.readI64(), -42);
  EXPECT_TRUE(r.readBool());
  EXPECT_FALSE(r.readBool());
  EXPECT_EQ(r.readString(), "hello");
  EXPECT_EQ(r.readBlob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, RoundTripsIds) {
  ByteWriter w;
  w.writeId(NodeId{17});
  w.writeId(Address{0xFFFFFFFFFFull});
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.readId<NodeId>(), NodeId{17});
  EXPECT_EQ(r.readId<Address>(), Address{0xFFFFFFFFFFull});
}

TEST(BytesTest, TruncatedReadThrows) {
  const Bytes data{0x01, 0x02};
  ByteReader r{data};
  EXPECT_THROW((void)r.readU32(), std::out_of_range);
}

TEST(BytesTest, TruncatedBlobThrows) {
  ByteWriter w;
  w.writeU32(100);  // claims a 100-byte blob that is not there
  ByteReader r{w.bytes()};
  EXPECT_THROW((void)r.readBlob(), std::out_of_range);
}

TEST(BytesTest, EmptyStringAndBlob) {
  ByteWriter w;
  w.writeString("");
  w.writeBlob({});
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.readString(), "");
  EXPECT_TRUE(r.readBlob().empty());
}

TEST(BytesTest, RemainingTracksConsumption) {
  ByteWriter w;
  w.writeU32(1);
  w.writeU32(2);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.readU32();
  EXPECT_EQ(r.remaining(), 4u);
}

// Property: encoding is canonical — identical inputs produce identical bytes.
class BytesCanonicalTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytesCanonicalTest, DeterministicEncoding) {
  const std::uint64_t v = GetParam();
  ByteWriter a;
  ByteWriter b;
  a.writeU64(v);
  a.writeI64(static_cast<std::int64_t>(v));
  b.writeU64(v);
  b.writeI64(static_cast<std::int64_t>(v));
  EXPECT_EQ(a.bytes(), b.bytes());

  ByteReader r{a.bytes()};
  EXPECT_EQ(r.readU64(), v);
  EXPECT_EQ(r.readI64(), static_cast<std::int64_t>(v));
}

INSTANTIATE_TEST_SUITE_P(Values, BytesCanonicalTest,
                         ::testing::Values(0ull, 1ull, 0xffull, 0x100ull,
                                           0xffffffffull, 0x100000000ull,
                                           ~0ull, 0x8000000000000000ull));

// --------------------------------------------------------------------- hex

TEST(HexTest, EncodesLowercase) {
  const Bytes data{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(toHex(data), "deadbeef");
}

TEST(HexTest, DecodesBothCases) {
  EXPECT_EQ(fromHex("DEADbeef"), (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(HexTest, RoundTrips) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(fromHex(toHex(data)), data);
}

TEST(HexTest, OddLengthThrows) {
  EXPECT_THROW((void)fromHex("abc"), std::invalid_argument);
}

TEST(HexTest, InvalidDigitThrows) {
  EXPECT_THROW((void)fromHex("zz"), std::invalid_argument);
}

TEST(HexTest, EmptyIsEmpty) {
  EXPECT_EQ(toHex(Bytes{}), "");
  EXPECT_TRUE(fromHex("").empty());
}

// ----------------------------------------------------------------- logging

TEST(LoggingTest, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::string> captured;
  const ScopedLogging scoped{
      LogLevel::kInfo,
      [&](LogLevel, std::string_view component, std::string_view message) {
        captured.push_back(std::string(component) + ": " +
                           std::string(message));
      }};

  BDP_LOG(kDebug, "test") << "hidden";
  BDP_LOG(kInfo, "test") << "visible " << 42;

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "test: visible 42");
}

TEST(LoggingTest, ScopedLoggingRestoresLevelAndSink) {
  const LogLevel before = Logging::level();
  const bool hadSink = static_cast<bool>(Logging::sink());
  {
    const ScopedLogging scoped{LogLevel::kTrace,
                               [](LogLevel, std::string_view,
                                  std::string_view) {}};
    EXPECT_EQ(Logging::level(), LogLevel::kTrace);
    EXPECT_TRUE(static_cast<bool>(Logging::sink()));
  }
  EXPECT_EQ(Logging::level(), before);
  EXPECT_EQ(static_cast<bool>(Logging::sink()), hadSink);
}

TEST(LoggingTest, LevelNamesAreStable) {
  EXPECT_EQ(toString(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(toString(LogLevel::kError), "ERROR");
}

// ------------------------------------------------------------------ assert

TEST(AssertTest, PassingAssertIsSilent) {
  EXPECT_NO_THROW(BDP_ASSERT(1 + 1 == 2));
}

TEST(AssertTest, FailingAssertThrowsWithLocation) {
  try {
    BDP_ASSERT_MSG(false, "context");
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace blackdp::common
