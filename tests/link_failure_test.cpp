// MAC ACK feedback and AODV route maintenance on link breaks, plus the
// gray hole boundary case and the data-plane burst helper.
#include <gtest/gtest.h>

#include <memory>

#include "attack/gray_hole_agent.hpp"
#include "fault/fault_injector.hpp"
#include "net/node.hpp"
#include "scenario/highway_scenario.hpp"

namespace blackdp {
namespace {

class Ping final : public net::Payload {
 public:
  [[nodiscard]] std::string_view typeName() const override { return "ping"; }
};

net::MediumConfig quietMedium() {
  net::MediumConfig c;
  c.maxJitter = sim::Duration{};
  return c;
}

// ------------------------------------------------------- MAC ACK feedback

class MacFeedbackTest : public ::testing::Test {
 protected:
  MacFeedbackTest() : medium_{simulator_, sim::Rng{1}, quietMedium()} {}

  sim::Simulator simulator_;
  net::WirelessMedium medium_;
};

TEST_F(MacFeedbackTest, UnicastToBoundInRangeOwnerSucceeds) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(medium_.stats().sendFailures, 0u);
}

TEST_F(MacFeedbackTest, UnicastToOutOfRangeOwnerFails) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({5000.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  std::vector<net::Frame> failed;
  a.addFailureHandler([&](const net::Frame& f) { failed.push_back(f); });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  simulator_.run();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].dst, common::Address{2});
  EXPECT_EQ(medium_.stats().sendFailures, 1u);
}

TEST_F(MacFeedbackTest, UnicastToUnknownAddressFails) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.sendTo(common::Address{404}, net::makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(failures, 1);
}

TEST_F(MacFeedbackTest, UnicastToDetachedOwnerFails) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  b.detachFromMedium();
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(failures, 1);
}

TEST_F(MacFeedbackTest, RenewedPseudonymStopsAckingOldAddress) {
  // The renewal-evasion channel, at MAC level: after the identity change,
  // frames to the old pseudonym report transmission failure.
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  b.setLocalAddress(common::Address{22});  // renewal
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  a.sendTo(common::Address{22}, net::makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(failures, 1);  // old address only
}

TEST_F(MacFeedbackTest, BroadcastNeverFails) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.broadcast(net::makePayload<Ping>());  // nobody else attached at all
  simulator_.run();
  EXPECT_EQ(failures, 0);
}

TEST_F(MacFeedbackTest, AliasBindingsAck) {
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  b.addAlias(common::Address{777});
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.sendTo(common::Address{777}, net::makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(failures, 0);
  b.removeAlias(common::Address{777});
  a.sendTo(common::Address{777}, net::makePayload<Ping>());
  simulator_.run();
  EXPECT_EQ(failures, 1);
}

// --------------------------------------------------- AODV on link failure

TEST(AodvLinkFailureTest, InvalidateViaKillsAllRoutesThroughNeighbor) {
  aodv::RoutingTable table;
  const sim::TimePoint now;
  aodv::RouteEntry e;
  e.validSeq = true;
  e.expiresAt = sim::TimePoint::fromUs(1'000'000);
  e.destination = common::Address{1};
  e.nextHop = common::Address{9};
  (void)table.update(e, now);
  e.destination = common::Address{2};
  e.nextHop = common::Address{9};
  (void)table.update(e, now);
  e.destination = common::Address{3};
  e.nextHop = common::Address{8};
  (void)table.update(e, now);

  EXPECT_EQ(table.invalidateVia(common::Address{9}), 2u);
  EXPECT_FALSE(table.activeRoute(common::Address{1}, now).has_value());
  EXPECT_FALSE(table.activeRoute(common::Address{2}, now).has_value());
  EXPECT_TRUE(table.activeRoute(common::Address{3}, now).has_value());
  EXPECT_EQ(table.invalidateVia(common::Address{9}), 0u);  // idempotent
}

TEST(AodvLinkFailureTest, BrokenNextHopInvalidatesAndRerrsUpstream) {
  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{7}, quietMedium()};
  // 0 — 1 — 2 line; then 2 vanishes entirely.
  std::vector<std::unique_ptr<net::BasicNode>> nodes;
  std::vector<std::unique_ptr<aodv::AodvAgent>> agents;
  for (std::size_t i = 0; i < 3; ++i) {
    auto node = std::make_unique<net::BasicNode>(
        simulator, medium, common::NodeId{static_cast<std::uint32_t>(i + 1)},
        mobility::LinearMotion::stationary(
            {800.0 * static_cast<double>(i), 0.0}));
    node->setLocalAddress(common::Address{100 + i});
    agents.push_back(std::make_unique<aodv::AodvAgent>(simulator, *node));
    nodes.push_back(std::move(node));
  }
  bool found = false;
  agents[0]->findRoute(common::Address{102}, [&](bool ok) { found = ok; });
  simulator.run(simulator.now() + sim::Duration::seconds(5));
  ASSERT_TRUE(found);

  nodes[2]->detachFromMedium();  // destination leaves without a trace
  EXPECT_TRUE(agents[0]->sendData(common::Address{102}));
  simulator.run(simulator.now() + sim::Duration::seconds(2));

  // Node 1's forward to 102 failed at the MAC: route invalidated, RERR sent
  // back, and the source's route died too.
  EXPECT_FALSE(agents[1]
                   ->routingTable()
                   .activeRoute(common::Address{102}, simulator.now())
                   .has_value());
  EXPECT_FALSE(agents[0]
                   ->routingTable()
                   .activeRoute(common::Address{102}, simulator.now())
                   .has_value());
  EXPECT_GE(agents[1]->stats().rerrSent, 1u);
}

// ---------------------------------------------------------------- gray hole

TEST(GrayHoleTest, DropsConfiguredFraction) {
  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{7}, quietMedium()};
  net::BasicNode a{simulator, medium, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode g{simulator, medium, common::NodeId{2},
                   mobility::LinearMotion::stationary({800.0, 0.0})};
  net::BasicNode b{simulator, medium, common::NodeId{3},
                   mobility::LinearMotion::stationary({1600.0, 0.0})};
  a.setLocalAddress(common::Address{100});
  g.setLocalAddress(common::Address{101});
  b.setLocalAddress(common::Address{102});
  aodv::AodvAgent agentA{simulator, a};
  attack::GrayHoleConfig config;
  config.dropProbability = 0.5;
  attack::GrayHoleAgent gray{simulator, g, config, sim::Rng{3}};
  aodv::AodvAgent agentB{simulator, b};

  bool found = false;
  agentA.findRoute(common::Address{102}, [&](bool ok) { found = ok; });
  simulator.run(simulator.now() + sim::Duration::seconds(5));
  ASSERT_TRUE(found);

  for (int i = 0; i < 200; ++i) {
    // Re-arm the route if an RERR from the drop path killed it (gray drops
    // are silent above the MAC, so the route actually stays).
    (void)agentA.sendData(common::Address{102});
  }
  simulator.run(simulator.now() + sim::Duration::seconds(5));
  const auto& stats = gray.grayStats();
  EXPECT_EQ(stats.dataSeen, 200u);
  EXPECT_GT(stats.dataDroppedSelectively, 60u);
  EXPECT_LT(stats.dataDroppedSelectively, 140u);
  EXPECT_EQ(agentB.stats().dataDelivered,
            200u - stats.dataDroppedSelectively);
}

TEST(GrayHoleTest, StaysSilentOnFakeDestinationProbes) {
  // Honest control plane: the BlackDP probe premise does not fire.
  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{7}, quietMedium()};
  net::BasicNode prober{simulator, medium, common::NodeId{1},
                        mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode g{simulator, medium, common::NodeId{2},
                   mobility::LinearMotion::stationary({500.0, 0.0})};
  prober.setLocalAddress(common::Address{100});
  g.setLocalAddress(common::Address{101});
  attack::GrayHoleConfig config;
  config.advertiseBoost = 5;
  attack::GrayHoleAgent gray{simulator, g, config, sim::Rng{3}};

  int rreps = 0;
  prober.addHandler([&](const net::Frame& frame) {
    if (net::payloadAs<aodv::RouteReply>(frame.payload)) ++rreps;
    return true;
  });
  auto rreq = std::make_shared<aodv::RouteRequest>();
  rreq->rreqId = common::RreqId{1};
  rreq->origin = common::Address{100};
  rreq->destination = common::Address{666};  // nonexistent
  rreq->ttl = 1;
  prober.sendTo(common::Address{101}, rreq);
  simulator.run(simulator.now() + sim::Duration::seconds(2));
  EXPECT_EQ(rreps, 0);
}

TEST(GrayHoleTest, BlackDpDoesNotFalselyConfirmGrayHole) {
  // The documented boundary: reported, probed, silent → not confirmed; and
  // since it truly committed no AODV violation, that verdict is correct —
  // no honest-node-style FP, no isolation.
  scenario::ScenarioConfig config;
  config.seed = 21;
  config.attack = scenario::AttackType::kNone;
  scenario::HighwayScenario world(config);
  attack::GrayHoleConfig gray;
  gray.dropProbability = 1.0;
  gray.advertiseBoost = 5;
  scenario::VehicleEntity& hole =
      world.spawnGrayHole(common::ClusterId{2}, gray);
  world.runFor(sim::Duration::milliseconds(500));

  world.injectDetectionRequest(world.source(), hole.address(),
                               common::ClusterId{2});
  world.runFor(sim::Duration::seconds(5));

  const auto& sessions =
      world.rsu(common::ClusterId{2}).detector->completedSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.front().verdict, core::Verdict::kNotConfirmed);
  EXPECT_TRUE(world.taNetwork().revocations().empty());
}

// ----------------------------------------------------------- data bursts

TEST(DataBurstTest, HonestWorldDeliversNearlyEverything) {
  scenario::ScenarioConfig config;
  config.seed = 31;
  config.attack = scenario::AttackType::kNone;
  scenario::HighwayScenario world(config);
  (void)world.runVerification();
  const auto burst = world.sendDataBurst(50);
  EXPECT_EQ(burst.sent, 50u);
  EXPECT_GE(burst.pdr(), 0.9);
}

TEST(DataBurstTest, UndefendedBlackHoleSwallowsEverything) {
  scenario::ScenarioConfig config;
  config.seed = 32;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;
  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));
  bool done = false;
  world.source().agent->findRoute(world.destination().address(),
                                  [&done](bool) { done = true; });
  world.runUntil([&] { return done; }, sim::Duration::seconds(10));
  const auto burst = world.sendDataBurst(50);
  EXPECT_EQ(burst.delivered, 0u);
  EXPECT_GT(world.primaryAttacker()->agent->stats().dataDropped, 0u);
}

TEST(DataBurstTest, BlackDpRestoresDelivery) {
  scenario::ScenarioConfig config;
  config.seed = 33;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;
  scenario::HighwayScenario world(config);
  const auto report = world.runVerification();
  ASSERT_EQ(report.outcome, core::Outcome::kAttackerConfirmed);
  const auto burst = world.sendDataBurst(50);
  EXPECT_GE(burst.pdr(), 0.9);
  EXPECT_EQ(world.primaryAttacker()->agent->stats().dataForwarded, 0u);
}

// -------------------------------------------- fault layer vs. MAC feedback

TEST_F(MacFeedbackTest, BurstLossFailsUnicastAck) {
  // A fault-layer drop outlives the MAC retry window, so — unlike the
  // medium's own i.i.d. losses — it surfaces as a transmission failure.
  fault::FaultPlan plan;
  fault::BurstLossEvent burst;
  burst.channel = fault::GilbertElliott{0.0, 1.0, 1.0, 1.0};  // always lose
  plan.burstLoss.push_back(burst);
  fault::FaultInjector injector{simulator_, sim::Rng{7}, std::move(plan)};
  medium_.setFaultHook(&injector);

  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  int failures = 0;
  int received = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  b.addHandler([&](const net::Frame&) {
    ++received;
    return true;
  });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  simulator_.run();

  EXPECT_EQ(received, 0);
  EXPECT_EQ(failures, 1);  // in range and bound, but the burst ate the frame
  EXPECT_EQ(medium_.stats().framesFaultDropped, 1u);
  EXPECT_EQ(medium_.stats().sendFailures, 1u);
  EXPECT_EQ(injector.stats().framesBurstLost, 1u);
  medium_.setFaultHook(nullptr);
}

TEST_F(MacFeedbackTest, IidLossStaysSilentUnderFaultHook) {
  // Control: with a hook installed that never drops, an i.i.d. medium loss
  // still does not fail the MAC ACK (the addressee was reachable at send
  // time and a real MAC rides out short fades).
  fault::FaultInjector injector{simulator_, sim::Rng{7}, fault::FaultPlan{}};
  net::MediumConfig lossy = quietMedium();
  lossy.lossProbability = 1.0;
  net::WirelessMedium medium{simulator_, sim::Rng{2}, lossy};
  medium.setFaultHook(&injector);

  net::BasicNode a{simulator_, medium, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  int failures = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  simulator_.run();

  EXPECT_EQ(failures, 0);
  EXPECT_EQ(medium.stats().framesLost, 1u);
  EXPECT_EQ(medium.stats().framesFaultDropped, 0u);
  medium.setFaultHook(nullptr);
}

TEST_F(MacFeedbackTest, MidFlightDetachSuppressesDeliveryWithoutAckFailure) {
  // The addressee was attached and in range at transmission time, so the
  // MAC ACK succeeded; detaching before the per-hop latency elapses only
  // suppresses the delivery (crash semantics, not a NACK).
  net::BasicNode a{simulator_, medium_, common::NodeId{1},
                   mobility::LinearMotion::stationary({0.0, 0.0})};
  net::BasicNode b{simulator_, medium_, common::NodeId{2},
                   mobility::LinearMotion::stationary({10.0, 0.0})};
  a.setLocalAddress(common::Address{1});
  b.setLocalAddress(common::Address{2});
  int failures = 0;
  int received = 0;
  a.addFailureHandler([&](const net::Frame&) { ++failures; });
  b.addHandler([&](const net::Frame&) {
    ++received;
    return true;
  });
  a.sendTo(common::Address{2}, net::makePayload<Ping>());
  b.detachFromMedium();  // while the frame is in flight
  simulator_.run();

  EXPECT_EQ(received, 0);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(medium_.stats().framesDelivered, 0u);
}

}  // namespace
}  // namespace blackdp
