// Property tests for the reporter-reputation state machine (the
// accusation-channel defense). The ledger is pure bookkeeping, so every
// transition is checked in isolation and against a reference model under
// random interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/bytes.hpp"
#include "core/reporter_ledger.hpp"
#include "sim/rng.hpp"

namespace blackdp::core {
namespace {

constexpr common::Address kReporter{0x501};
constexpr common::Address kOther{0x502};

sim::TimePoint at(std::int64_t ms) {
  return sim::TimePoint::fromUs(ms * 1000);
}

TEST(ReporterLedgerTest, RateLimitWindowSlides) {
  ReporterLedgerConfig config;
  config.windowMax = 3;
  config.window = sim::Duration::seconds(10);
  ReporterLedger ledger{config};

  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(0)));
  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(100)));
  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(200)));
  // Over budget inside the window.
  EXPECT_FALSE(ledger.admitAccusation(kReporter, at(300)));
  // A different reporter has its own budget.
  EXPECT_TRUE(ledger.admitAccusation(kOther, at(300)));
  // Once the first accusations age out of the window, budget returns.
  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(10'200)));
}

TEST(ReporterLedgerTest, RejectedAccusationsDoNotConsumeBudget) {
  ReporterLedgerConfig config;
  config.windowMax = 1;
  config.window = sim::Duration::seconds(1);
  ReporterLedger ledger{config};

  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(0)));
  // Hammering while over budget must not extend the lockout.
  for (int ms = 100; ms < 1000; ms += 100) {
    EXPECT_FALSE(ledger.admitAccusation(kReporter, at(ms)));
  }
  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(1'100)));
}

TEST(ReporterLedgerTest, DemeritCrossesThresholdExactlyOnce) {
  ReporterLedgerConfig config;
  config.demeritThreshold = 3;
  ReporterLedger ledger{config};

  EXPECT_FALSE(ledger.demerit(kReporter));
  EXPECT_FALSE(ledger.demerit(kReporter));
  EXPECT_FALSE(ledger.isQuarantined(kReporter));
  // The crossing demerit reports true — and only that one, ever.
  EXPECT_TRUE(ledger.demerit(kReporter));
  EXPECT_TRUE(ledger.isQuarantined(kReporter));
  EXPECT_FALSE(ledger.demerit(kReporter));
  EXPECT_FALSE(ledger.demerit(kReporter));
}

TEST(ReporterLedgerTest, QuarantineBlocksFurtherAccusations) {
  ReporterLedgerConfig config;
  config.demeritThreshold = 1;
  ReporterLedger ledger{config};

  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(0)));
  EXPECT_TRUE(ledger.demerit(kReporter));
  EXPECT_FALSE(ledger.admitAccusation(kReporter, at(50'000)));
}

TEST(ReporterLedgerTest, CreditForgivesButFloorsAtZero) {
  ReporterLedgerConfig config;
  config.demeritThreshold = 2;
  ReporterLedger ledger{config};

  ledger.credit(kReporter);  // floor: no negative score
  EXPECT_EQ(ledger.demeritScore(kReporter), 0);

  EXPECT_FALSE(ledger.demerit(kReporter));
  ledger.credit(kReporter);
  EXPECT_EQ(ledger.demeritScore(kReporter), 0);
  // The forgiven demerit buys headroom before the threshold.
  EXPECT_FALSE(ledger.demerit(kReporter));
  EXPECT_TRUE(ledger.demerit(kReporter));
}

TEST(ReporterLedgerTest, NonceReplayRejectedPerReporter) {
  ReporterLedger ledger;
  EXPECT_TRUE(ledger.admitNonce(kReporter, 42));
  EXPECT_FALSE(ledger.admitNonce(kReporter, 42));
  // Nonces are scoped per reporter.
  EXPECT_TRUE(ledger.admitNonce(kOther, 42));
  // Legacy unstamped d_reqs (nonce 0) always pass.
  EXPECT_TRUE(ledger.admitNonce(kReporter, 0));
  EXPECT_TRUE(ledger.admitNonce(kReporter, 0));
}

TEST(ReporterLedgerTest, NonceCacheEvictsOldestFirst) {
  ReporterLedgerConfig config;
  config.nonceCacheMax = 4;
  ReporterLedger ledger{config};

  for (std::uint64_t n = 1; n <= 4; ++n) {
    EXPECT_TRUE(ledger.admitNonce(kReporter, n));
  }
  EXPECT_FALSE(ledger.admitNonce(kReporter, 1));
  // Nonce 5 evicts nonce 1 (oldest); a replay of 1 now slips through, which
  // is the documented bounded-memory trade-off.
  EXPECT_TRUE(ledger.admitNonce(kReporter, 5));
  EXPECT_TRUE(ledger.admitNonce(kReporter, 1));
  // Recent nonces are still rejected.
  EXPECT_FALSE(ledger.admitNonce(kReporter, 5));
}

// Model-based property sweep: random demerit/credit interleavings must
// always agree with a trivially correct reference model.
TEST(ReporterLedgerTest, RandomInterleavingsMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    sim::Rng rng{seed};
    ReporterLedgerConfig config;
    config.demeritThreshold = static_cast<int>(rng.uniformInt(1, 6));
    ReporterLedger ledger{config};

    int model = 0;
    bool modelQuarantined = false;
    int thresholdCrossings = 0;
    for (int step = 0; step < 200; ++step) {
      if (rng.bernoulli(0.6)) {
        const bool crossed = ledger.demerit(kReporter);
        ++model;
        if (crossed) ++thresholdCrossings;
        if (!modelQuarantined && model >= config.demeritThreshold) {
          modelQuarantined = true;
          EXPECT_TRUE(crossed) << "seed " << seed << " step " << step;
        } else {
          EXPECT_FALSE(crossed) << "seed " << seed << " step " << step;
        }
      } else {
        ledger.credit(kReporter);
        model = std::max(0, model - 1);
      }
      EXPECT_EQ(ledger.demeritScore(kReporter), model)
          << "seed " << seed << " step " << step;
      EXPECT_EQ(ledger.isQuarantined(kReporter), modelQuarantined)
          << "seed " << seed << " step " << step;
    }
    EXPECT_LE(thresholdCrossings, 1) << "seed " << seed;
  }
}

// Rate-limit property under random arrival times: the number of admitted
// accusations inside any window never exceeds windowMax.
TEST(ReporterLedgerTest, WindowBudgetNeverExceededUnderRandomArrivals) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Rng rng{seed * 977};
    ReporterLedgerConfig config;
    config.windowMax = static_cast<std::uint32_t>(rng.uniformInt(1, 5));
    config.window = sim::Duration::seconds(5);
    ReporterLedger ledger{config};

    std::vector<sim::TimePoint> admitted;
    std::int64_t nowMs = 0;
    for (int step = 0; step < 300; ++step) {
      nowMs += rng.uniformInt(0, 1'500);
      if (ledger.admitAccusation(kReporter, at(nowMs))) {
        admitted.push_back(at(nowMs));
      }
      // Count admissions inside the current window (inclusive semantics
      // match the ledger: entries older than `window` are evicted).
      std::size_t inWindow = 0;
      for (const sim::TimePoint t : admitted) {
        if (at(nowMs) - t <= config.window) ++inWindow;
      }
      EXPECT_LE(inWindow, config.windowMax) << "seed " << seed;
    }
  }
}

// --- snapshot / restore semantics ------------------------------------------

namespace {

ReporterLedger reserialized(const ReporterLedger& ledger) {
  common::ByteWriter w;
  ledger.saveState(w);
  const common::Bytes bytes = std::move(w).take();
  ReporterLedger restored{ledger.config()};
  common::ByteReader r{bytes};
  restored.restoreState(r);
  EXPECT_TRUE(r.exhausted());
  return restored;
}

common::Bytes snapshotBytes(const ReporterLedger& ledger) {
  common::ByteWriter w;
  ledger.saveState(w);
  return std::move(w).take();
}

}  // namespace

TEST(ReporterLedgerRestoreTest, ReplayedNoncesStayRejectedAcrossRestore) {
  ReporterLedger ledger;
  EXPECT_TRUE(ledger.admitNonce(kReporter, 42, at(10)));
  EXPECT_TRUE(ledger.admitNonce(kReporter, 43, at(20)));

  ReporterLedger restored = reserialized(ledger);
  // The replay cache survived: a replayed d_req is NOT re-admitted after a
  // checkpoint/restore cycle (the whole point of checkpointing the ledger).
  EXPECT_FALSE(restored.admitNonce(kReporter, 42, at(30)));
  EXPECT_FALSE(restored.admitNonce(kReporter, 43, at(30)));
  EXPECT_TRUE(restored.admitNonce(kReporter, 44, at(30)));
}

TEST(ReporterLedgerRestoreTest, RateLimitWindowSurvivesRestore) {
  ReporterLedgerConfig config;
  config.windowMax = 2;
  config.window = sim::Duration::seconds(10);
  ReporterLedger ledger{config};
  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(0)));
  EXPECT_TRUE(ledger.admitAccusation(kReporter, at(100)));

  ReporterLedger restored = reserialized(ledger);
  // Still over budget right after restore...
  EXPECT_FALSE(restored.admitAccusation(kReporter, at(200)));
  // ...and the window keeps sliding off the restored timestamps.
  EXPECT_TRUE(restored.admitAccusation(kReporter, at(10'200)));
}

TEST(ReporterLedgerRestoreTest, QuarantineAndDemeritsSurviveRestore) {
  ReporterLedgerConfig config;
  config.demeritThreshold = 2;
  ReporterLedger ledger{config};
  EXPECT_FALSE(ledger.demerit(kReporter));
  EXPECT_FALSE(ledger.demerit(kOther));
  EXPECT_TRUE(ledger.demerit(kReporter));

  ReporterLedger restored = reserialized(ledger);
  EXPECT_TRUE(restored.isQuarantined(kReporter));
  EXPECT_EQ(restored.demeritScore(kOther), 1);
  EXPECT_FALSE(restored.admitAccusation(kReporter, at(999)));
  // No double threshold-crossing after restore.
  EXPECT_FALSE(restored.demerit(kReporter));
}

TEST(ReporterLedgerRestoreTest, SerializationIsCanonical) {
  // Same logical state reached through different insertion orders must
  // serialize to identical bytes (checkpoint byte-identity depends on it).
  ReporterLedger a;
  EXPECT_TRUE(a.admitNonce(kReporter, 1, at(5)));
  EXPECT_TRUE(a.admitNonce(kOther, 2, at(5)));
  ReporterLedger b;
  EXPECT_TRUE(b.admitNonce(kOther, 2, at(5)));
  EXPECT_TRUE(b.admitNonce(kReporter, 1, at(5)));
  EXPECT_EQ(snapshotBytes(a), snapshotBytes(b));
}

// Property sweep: interrupt a random operation sequence with a
// snapshot/restore cycle at a random point; the restored ledger must stay
// outcome-identical with the uninterrupted one for the rest of the sequence,
// and their final snapshots must be byte-identical.
TEST(ReporterLedgerRestoreTest, RandomCutPointsAreOutcomeInvisible) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    sim::Rng rng{seed * 131};
    ReporterLedgerConfig config;
    config.windowMax = static_cast<std::uint32_t>(rng.uniformInt(1, 4));
    config.window = sim::Duration::seconds(rng.uniformInt(1, 8));
    config.demeritThreshold = static_cast<int>(rng.uniformInt(2, 5));
    config.nonceCacheMax = static_cast<std::size_t>(rng.uniformInt(2, 6));
    config.entryTtl = sim::Duration::seconds(rng.uniformInt(20, 40));

    ReporterLedger uninterrupted{config};
    ReporterLedger interrupted{config};
    const std::int64_t cut = rng.uniformInt(20, 180);
    std::int64_t nowMs = 0;
    for (std::int64_t step = 0; step < 200; ++step) {
      if (step == cut) {
        interrupted = reserialized(interrupted);
      }
      nowMs += rng.uniformInt(0, 900);
      const common::Address reporter{
          static_cast<std::uint64_t>(0x600 + rng.uniformInt(0, 3))};
      const int op = static_cast<int>(rng.uniformInt(0, 3));
      switch (op) {
        case 0:
          EXPECT_EQ(uninterrupted.admitAccusation(reporter, at(nowMs)),
                    interrupted.admitAccusation(reporter, at(nowMs)))
              << "seed " << seed << " step " << step;
          break;
        case 1: {
          const std::uint64_t nonce = static_cast<std::uint64_t>(
              rng.uniformInt(1, 8));  // small pool: replays are common
          EXPECT_EQ(uninterrupted.admitNonce(reporter, nonce, at(nowMs)),
                    interrupted.admitNonce(reporter, nonce, at(nowMs)))
              << "seed " << seed << " step " << step;
          break;
        }
        case 2:
          EXPECT_EQ(uninterrupted.demerit(reporter),
                    interrupted.demerit(reporter))
              << "seed " << seed << " step " << step;
          break;
        default:
          uninterrupted.credit(reporter);
          interrupted.credit(reporter);
          break;
      }
      if (step % 40 == 39) {
        uninterrupted.evictIdle(at(nowMs));
        interrupted.evictIdle(at(nowMs));
      }
      EXPECT_EQ(uninterrupted.demeritScore(reporter),
                interrupted.demeritScore(reporter))
          << "seed " << seed << " step " << step;
    }
    EXPECT_EQ(snapshotBytes(uninterrupted), snapshotBytes(interrupted))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace blackdp::core
