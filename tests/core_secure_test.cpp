// Secure-packet envelope creation and verification paths.
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "core/secure.hpp"

namespace blackdp::core {
namespace {

class SecureTest : public ::testing::Test {
 protected:
  SecureTest() : ta_{simulator_, engine_} {
    taId_ = ta_.addAuthority();
    enrollment_ = ta_.enroll(taId_, common::NodeId{1}).value();
  }

  [[nodiscard]] aodv::Credentials credentials() const {
    return {enrollment_.certificate, enrollment_.privateKey};
  }

  sim::Simulator simulator_;
  crypto::CryptoEngine engine_{11};
  crypto::TaNetwork ta_;
  common::TaId taId_;
  crypto::Enrollment enrollment_;
};

TEST_F(SecureTest, RoundTripVerifies) {
  const common::Bytes body{1, 2, 3, 4};
  const auto envelope = makeEnvelope(body, credentials(), engine_);
  const EnvelopeCheck check =
      verifyEnvelope(body, envelope, enrollment_.certificate.pseudonym, ta_,
                     engine_, simulator_.now());
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST_F(SecureTest, MissingEnvelopeFails) {
  const EnvelopeCheck check =
      verifyEnvelope({1, 2}, std::nullopt, enrollment_.certificate.pseudonym,
                     ta_, engine_, simulator_.now());
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "no-envelope");
}

TEST_F(SecureTest, PseudonymMismatchFails) {
  // The attacker's forged Hello reply: valid certificate, wrong identity.
  const common::Bytes body{1, 2, 3};
  const auto envelope = makeEnvelope(body, credentials(), engine_);
  const EnvelopeCheck check = verifyEnvelope(
      body, envelope, common::Address{4242}, ta_, engine_, simulator_.now());
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "pseudonym-mismatch");
}

TEST_F(SecureTest, TamperedBodyFails) {
  const common::Bytes body{1, 2, 3};
  const auto envelope = makeEnvelope(body, credentials(), engine_);
  const common::Bytes tampered{1, 2, 4};
  const EnvelopeCheck check =
      verifyEnvelope(tampered, envelope, enrollment_.certificate.pseudonym,
                     ta_, engine_, simulator_.now());
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "bad-signature");
}

TEST_F(SecureTest, ForgedCertificateFails) {
  const common::Bytes body{1, 2, 3};
  auto envelope = makeEnvelope(body, credentials(), engine_);
  envelope.certificate.expiresAt =
      envelope.certificate.expiresAt + sim::Duration::seconds(1000);
  const EnvelopeCheck check =
      verifyEnvelope(body, envelope, enrollment_.certificate.pseudonym, ta_,
                     engine_, simulator_.now());
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "bad-certificate");
}

TEST_F(SecureTest, ExpiredCertificateFails) {
  const common::Bytes body{1, 2, 3};
  const auto envelope = makeEnvelope(body, credentials(), engine_);
  const EnvelopeCheck check = verifyEnvelope(
      body, envelope, enrollment_.certificate.pseudonym, ta_, engine_,
      enrollment_.certificate.expiresAt + sim::Duration::seconds(1));
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "bad-certificate");
}

TEST_F(SecureTest, RevokedCertificateFails) {
  const common::Bytes body{1, 2, 3};
  const auto envelope = makeEnvelope(body, credentials(), engine_);
  crypto::RevocationStore store;
  store.add({enrollment_.certificate.pseudonym,
             enrollment_.certificate.serial,
             enrollment_.certificate.expiresAt});
  const EnvelopeCheck check =
      verifyEnvelope(body, envelope, enrollment_.certificate.pseudonym, ta_,
                     engine_, simulator_.now(), &store);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "revoked");
}

TEST_F(SecureTest, SignatureFromAnotherKeyFails) {
  const common::Bytes body{1, 2, 3};
  const auto other = ta_.enroll(taId_, common::NodeId{2}).value();
  // Sign with node 2's key but present node 1's certificate.
  auto envelope = makeEnvelope(body, {other.certificate, other.privateKey},
                               engine_);
  envelope.certificate = enrollment_.certificate;
  const EnvelopeCheck check =
      verifyEnvelope(body, envelope, enrollment_.certificate.pseudonym, ta_,
                     engine_, simulator_.now());
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.reason, "bad-signature");
}

// ---------------------------------------------------------------- messages

TEST(CoreMessagesTest, VerdictNamesAreStable) {
  EXPECT_EQ(toString(Verdict::kNotConfirmed), "not-confirmed");
  EXPECT_EQ(toString(Verdict::kSingleBlackHole), "single-black-hole");
  EXPECT_EQ(toString(Verdict::kCooperativeBlackHole),
            "cooperative-black-hole");
  EXPECT_EQ(toString(Verdict::kUnreachable), "unreachable");
}

TEST(CoreMessagesTest, AuthHelloCanonicalBytesCoverIdentity) {
  AuthHello a;
  a.helloId = 1;
  a.origin = common::Address{10};
  a.destination = common::Address{20};
  AuthHello b = a;
  EXPECT_EQ(a.canonicalBytes(), b.canonicalBytes());
  b.responder = common::Address{66};
  EXPECT_NE(a.canonicalBytes(), b.canonicalBytes());
  AuthHello c = a;
  c.isReply = true;
  EXPECT_NE(a.canonicalBytes(), c.canonicalBytes());
}

TEST(CoreMessagesTest, DreqCanonicalBytesMatchPaperTuple) {
  // d_req = ⟨v_i, CH(v_i), v_B, CH(v_B)⟩ — all four fields signed.
  DetectionRequest a;
  a.reporter = common::Address{1};
  a.reporterCluster = common::ClusterId{2};
  a.suspect = common::Address{3};
  a.suspectCluster = common::ClusterId{4};
  for (int field = 0; field < 4; ++field) {
    DetectionRequest b = a;
    switch (field) {
      case 0: b.reporter = common::Address{9}; break;
      case 1: b.reporterCluster = common::ClusterId{9}; break;
      case 2: b.suspect = common::Address{9}; break;
      case 3: b.suspectCluster = common::ClusterId{9}; break;
    }
    EXPECT_NE(a.canonicalBytes(), b.canonicalBytes()) << "field " << field;
  }
}

TEST(CoreMessagesTest, TypeNamesAreStable) {
  EXPECT_EQ(AuthHello{}.typeName(), "hello");
  EXPECT_EQ(DetectionRequest{}.typeName(), "dreq");
  EXPECT_EQ(ForwardedDetection{}.typeName(), "dfwd");
  EXPECT_EQ(DetectionResult{}.typeName(), "dres");
  EXPECT_EQ(DetectionResponse{}.typeName(), "dresp");
}

}  // namespace
}  // namespace blackdp::core
