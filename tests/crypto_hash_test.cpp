// SHA-256 against FIPS 180-4 / NIST CAVP vectors; HMAC-SHA-256 against
// RFC 4231 vectors; incremental-vs-one-shot property.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/rng.hpp"

namespace blackdp::crypto {
namespace {

std::string hashHex(std::string_view s) { return toHex(Sha256::hash(s)); }

// ------------------------------------------------------- published vectors

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, FourBlockMessage) {
  EXPECT_EQ(
      hashHex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
              "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(toHex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, SingleByte) {
  // NIST CAVP SHA256ShortMsg.rsp, Len = 8, Msg = d3.
  const common::Bytes msg = common::fromHex("d3");
  EXPECT_EQ(toHex(Sha256::hash(std::span<const std::uint8_t>{msg.data(),
                                                             msg.size()})),
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1");
}

TEST(Sha256Test, ExactlyOneBlockOfPaddingBoundary) {
  // 55 bytes: the largest message fitting one padded block.
  const std::string msg(55, 'x');
  // 56 bytes: forces a second padding block.
  const std::string msg2(56, 'x');
  EXPECT_NE(hashHex(msg), hashHex(msg2));
  EXPECT_EQ(hashHex(msg), hashHex(msg));  // deterministic
}

// ----------------------------------------------------------- incrementality

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  ctx.update(data.substr(0, 10));
  ctx.update(data.substr(10, 1));
  ctx.update(data.substr(11));
  EXPECT_EQ(toHex(ctx.finish()), hashHex(data));
}

TEST(Sha256Test, ContextResetsAfterFinish) {
  Sha256 ctx;
  ctx.update(std::string_view{"first"});
  (void)ctx.finish();
  ctx.update(std::string_view{"abc"});
  EXPECT_EQ(toHex(ctx.finish()), hashHex("abc"));
}

class Sha256ChunkingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256ChunkingProperty, AnyChunkingMatchesOneShot) {
  sim::Rng rng{GetParam()};
  common::Bytes data(1021);  // deliberately not a multiple of 64
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

  const Digest whole =
      Sha256::hash(std::span<const std::uint8_t>{data.data(), data.size()});

  Sha256 ctx;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniformInt(1, 100)),
        data.size() - offset);
    ctx.update(std::span<const std::uint8_t>{data.data() + offset, chunk});
    offset += chunk;
  }
  EXPECT_EQ(toHex(ctx.finish()), toHex(whole));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sha256ChunkingProperty,
                         ::testing::Range<std::size_t>(1, 13));

// ------------------------------------------------------------ HMAC-SHA-256

TEST(HmacTest, Rfc4231Case1) {
  const common::Bytes key(20, 0x0b);
  const Digest mac = hmacSha256(
      std::span<const std::uint8_t>{key.data(), key.size()},
      std::span<const std::uint8_t>{
          reinterpret_cast<const std::uint8_t*>("Hi There"), 8});
  EXPECT_EQ(toHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Digest mac =
      hmacSha256(std::string_view{"Jefe"},
                 std::string_view{"what do ya want for nothing?"});
  EXPECT_EQ(toHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const common::Bytes key(20, 0xaa);
  const common::Bytes data(50, 0xdd);
  const Digest mac =
      hmacSha256(std::span<const std::uint8_t>{key.data(), key.size()},
                 std::span<const std::uint8_t>{data.data(), data.size()});
  EXPECT_EQ(toHex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  // Keys longer than the block size are hashed first.
  const common::Bytes key(131, 0xaa);
  const Digest mac = hmacSha256(
      std::span<const std::uint8_t>{key.data(), key.size()},
      std::span<const std::uint8_t>{
          reinterpret_cast<const std::uint8_t*>(
              "Test Using Larger Than Block-Size Key - Hash Key First"),
          54});
  EXPECT_EQ(toHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  EXPECT_NE(toHex(hmacSha256(std::string_view{"k1"}, std::string_view{"m"})),
            toHex(hmacSha256(std::string_view{"k2"}, std::string_view{"m"})));
}

TEST(HmacTest, DifferentMessagesDifferentMacs) {
  EXPECT_NE(toHex(hmacSha256(std::string_view{"k"}, std::string_view{"m1"})),
            toHex(hmacSha256(std::string_view{"k"}, std::string_view{"m2"})));
}

TEST(DigestEqualsTest, EqualAndUnequal) {
  const Digest a = Sha256::hash(std::string_view{"x"});
  Digest b = a;
  EXPECT_TRUE(digestEquals(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digestEquals(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(digestEquals(a, b));
}

}  // namespace
}  // namespace blackdp::crypto
