// Pins the parallel trial runner's determinism contract: results come back
// slotted by submission index, so a fold over them is bit-identical for any
// worker count — including the full sensitivity sweep's merged metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "scenario/experiments.hpp"
#include "sim/parallel.hpp"

namespace blackdp {
namespace {

/// Restores (or clears) BLACKDP_JOBS on scope exit so tests can't leak env
/// state into each other.
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    if (const char* prev = std::getenv("BLACKDP_JOBS")) previous_ = prev;
    if (value != nullptr) {
      ::setenv("BLACKDP_JOBS", value, 1);
    } else {
      ::unsetenv("BLACKDP_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (previous_.empty()) {
      ::unsetenv("BLACKDP_JOBS");
    } else {
      ::setenv("BLACKDP_JOBS", previous_.c_str(), 1);
    }
  }
  ScopedJobsEnv(const ScopedJobsEnv&) = delete;
  ScopedJobsEnv& operator=(const ScopedJobsEnv&) = delete;

 private:
  std::string previous_;
};

TEST(ResolveJobCountTest, ExplicitRequestWins) {
  const ScopedJobsEnv env{"7"};
  EXPECT_EQ(sim::resolveJobCount(3), 3u);
}

TEST(ResolveJobCountTest, FallsBackToEnvironmentVariable) {
  const ScopedJobsEnv env{"5"};
  EXPECT_EQ(sim::resolveJobCount(0), 5u);
}

TEST(ResolveJobCountTest, IgnoresGarbageEnvironmentValue) {
  const ScopedJobsEnv env{"banana"};
  const unsigned resolved = sim::resolveJobCount(0);
  const unsigned hardware = std::thread::hardware_concurrency();
  EXPECT_EQ(resolved, hardware > 0 ? hardware : 1u);
}

TEST(ResolveJobCountTest, NeverReturnsZero) {
  const ScopedJobsEnv env{nullptr};
  EXPECT_GE(sim::resolveJobCount(0), 1u);
}

TEST(ConsumeJobsFlagTest, StripsSeparateAndEqualsFormsLastWins) {
  std::vector<std::string> storage = {"bench",   "10",        "--jobs", "2",
                                      "extra",   "--jobs=6"};
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());

  const unsigned jobs = sim::consumeJobsFlag(argc, argv.data());

  EXPECT_EQ(jobs, 6u);
  ASSERT_EQ(argc, 3);  // positional arguments survive untouched, in order
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "10");
  EXPECT_STREQ(argv[2], "extra");
}

TEST(ConsumeJobsFlagTest, ReturnsZeroWhenAbsent) {
  std::vector<std::string> storage = {"bench", "40"};
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  EXPECT_EQ(sim::consumeJobsFlag(argc, argv.data()), 0u);
  EXPECT_EQ(argc, 2);
}

TEST(ParallelRunnerTest, MapReturnsResultsInSubmissionOrder) {
  const sim::ParallelRunner runner{4};
  const std::vector<std::size_t> results =
      runner.map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelRunnerTest, ForEachIndexRunsEveryTaskExactlyOnce) {
  const sim::ParallelRunner runner{4};
  std::vector<std::atomic<int>> hits(100);
  runner.forEachIndex(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelRunnerTest, LowestIndexedFailureIsRethrown) {
  const sim::ParallelRunner runner{4};
  EXPECT_THROW(
      {
        try {
          runner.forEachIndex(64, [](std::size_t i) {
            if (i >= 10) throw std::runtime_error("task " + std::to_string(i));
          });
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task 10");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ParallelRunnerTest, SingleJobRunsInline) {
  const sim::ParallelRunner runner{1};
  EXPECT_EQ(runner.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  runner.forEachIndex(8, [caller](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

/// The jobs-count-independence pin from the issue: the smallest sensitivity-
/// sweep grid merged at --jobs 1 and --jobs 4 must produce identical cells
/// AND an identical merged metrics JSON document.
TEST(ParallelRunnerTest, SensitivitySweepIsJobCountIndependent) {
  const std::vector<std::uint32_t> fleets = {40};
  const std::vector<double> ranges = {600.0};
  constexpr std::uint32_t kTrials = 4;
  constexpr std::uint64_t kSeedBase = 31'000;

  const auto sweep = [&](unsigned jobs) {
    obs::MetricsRegistry registry;
    const sim::ParallelRunner runner{jobs};
    const std::vector<scenario::SensitivityCell> cells =
        scenario::runSensitivitySweep(fleets, ranges, kTrials, kSeedBase,
                                      runner, &registry);
    return std::pair{cells, registry.snapshot().toJson()};
  };

  const auto [serialCells, serialJson] = sweep(1);
  const auto [parallelCells, parallelJson] = sweep(4);

  ASSERT_EQ(serialCells.size(), 1u);
  ASSERT_EQ(parallelCells.size(), 1u);
  EXPECT_EQ(serialCells[0].fleet, parallelCells[0].fleet);
  EXPECT_EQ(serialCells[0].rangeM, parallelCells[0].rangeM);
  EXPECT_EQ(serialCells[0].trials, parallelCells[0].trials);
  EXPECT_EQ(serialCells[0].attacksLaunched, parallelCells[0].attacksLaunched);
  EXPECT_EQ(serialCells[0].matrix.tp(), parallelCells[0].matrix.tp());
  EXPECT_EQ(serialCells[0].matrix.fp(), parallelCells[0].matrix.fp());
  EXPECT_EQ(serialCells[0].matrix.tn(), parallelCells[0].matrix.tn());
  EXPECT_EQ(serialCells[0].matrix.fn(), parallelCells[0].matrix.fn());
  EXPECT_EQ(serialJson, parallelJson);
  EXPECT_EQ(serialCells[0].trials, kTrials);
}

}  // namespace
}  // namespace blackdp
