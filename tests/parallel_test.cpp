// Pins the parallel trial runner's determinism contract: results come back
// slotted by submission index, so a fold over them is bit-identical for any
// worker count. (The end-to-end jobs-independence pin over a real workload
// lives in campaign_test.cpp, on the campaign engine.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "codec/checkpoint.hpp"
#include "obs/registry.hpp"
#include "sim/parallel.hpp"

namespace blackdp {
namespace {

/// Restores (or clears) BLACKDP_JOBS on scope exit so tests can't leak env
/// state into each other.
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    if (const char* prev = std::getenv("BLACKDP_JOBS")) previous_ = prev;
    if (value != nullptr) {
      ::setenv("BLACKDP_JOBS", value, 1);
    } else {
      ::unsetenv("BLACKDP_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (previous_.empty()) {
      ::unsetenv("BLACKDP_JOBS");
    } else {
      ::setenv("BLACKDP_JOBS", previous_.c_str(), 1);
    }
  }
  ScopedJobsEnv(const ScopedJobsEnv&) = delete;
  ScopedJobsEnv& operator=(const ScopedJobsEnv&) = delete;

 private:
  std::string previous_;
};

TEST(ResolveJobCountTest, ExplicitRequestWins) {
  const ScopedJobsEnv env{"7"};
  EXPECT_EQ(sim::resolveJobCount(3), 3u);
}

TEST(ResolveJobCountTest, FallsBackToEnvironmentVariable) {
  const ScopedJobsEnv env{"5"};
  EXPECT_EQ(sim::resolveJobCount(0), 5u);
}

TEST(ResolveJobCountTest, IgnoresGarbageEnvironmentValue) {
  const ScopedJobsEnv env{"banana"};
  const unsigned resolved = sim::resolveJobCount(0);
  const unsigned hardware = std::thread::hardware_concurrency();
  EXPECT_EQ(resolved, hardware > 0 ? hardware : 1u);
}

TEST(ResolveJobCountTest, NeverReturnsZero) {
  const ScopedJobsEnv env{nullptr};
  EXPECT_GE(sim::resolveJobCount(0), 1u);
}

TEST(ConsumeJobsFlagTest, StripsSeparateAndEqualsFormsLastWins) {
  std::vector<std::string> storage = {"bench",   "10",        "--jobs", "2",
                                      "extra",   "--jobs=6"};
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());

  const unsigned jobs = sim::consumeJobsFlag(argc, argv.data());

  EXPECT_EQ(jobs, 6u);
  ASSERT_EQ(argc, 3);  // positional arguments survive untouched, in order
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "10");
  EXPECT_STREQ(argv[2], "extra");
}

TEST(ConsumeJobsFlagTest, ReturnsZeroWhenAbsent) {
  std::vector<std::string> storage = {"bench", "40"};
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  EXPECT_EQ(sim::consumeJobsFlag(argc, argv.data()), 0u);
  EXPECT_EQ(argc, 2);
}

TEST(ParallelRunnerTest, MapReturnsResultsInSubmissionOrder) {
  const sim::ParallelRunner runner{4};
  const std::vector<std::size_t> results =
      runner.map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelRunnerTest, ForEachIndexRunsEveryTaskExactlyOnce) {
  const sim::ParallelRunner runner{4};
  std::vector<std::atomic<int>> hits(100);
  runner.forEachIndex(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelRunnerTest, LowestIndexedFailureIsRethrown) {
  const sim::ParallelRunner runner{4};
  EXPECT_THROW(
      {
        try {
          runner.forEachIndex(64, [](std::size_t i) {
            if (i >= 10) throw std::runtime_error("task " + std::to_string(i));
          });
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task 10");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ParallelRunnerTest, SuppressedFailuresAreRecordedSortedByIndex) {
  const sim::ParallelRunner runner{4};
  try {
    runner.forEachIndex(64, [](std::size_t i) {
      if (i == 7 || i == 23 || i == 41) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected the lowest-indexed exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  // The two failures the rethrow suppressed are queryable, in index order,
  // with their messages preserved.
  const std::vector<sim::WorkerFailure>& swallowed = runner.swallowedFailures();
  ASSERT_EQ(swallowed.size(), 2u);
  EXPECT_EQ(swallowed[0].index, 23u);
  EXPECT_EQ(swallowed[0].what, "task 23");
  EXPECT_EQ(swallowed[1].index, 41u);
  EXPECT_EQ(swallowed[1].what, "task 41");
}

TEST(ParallelRunnerTest, SwallowedFailuresResetOnTheNextRun) {
  const sim::ParallelRunner runner{4};
  try {
    runner.forEachIndex(8, [](std::size_t i) {
      if (i >= 2) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(runner.swallowedFailures().empty());
  runner.forEachIndex(8, [](std::size_t) {});
  EXPECT_TRUE(runner.swallowedFailures().empty());
}

TEST(ParallelRunnerTest, SingleJobRunsInline) {
  const sim::ParallelRunner runner{1};
  EXPECT_EQ(runner.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  runner.forEachIndex(8, [caller](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

// A worker that dies while writing a checkpoint must propagate its exception
// through forEachIndex AND leave the checkpoint file either absent or intact
// — never a partial write, never a stray temp file (write-to-temp + atomic
// rename). This is the campaign-manifest / stream-checkpoint crash contract.
TEST(ParallelRunnerTest, WorkerExceptionDuringCheckpointWriteLeavesNoPartialFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path{::testing::TempDir()} / "blackdp_parallel_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "campaign.ckpt").string();
  const common::Bytes original{1, 2, 3};
  ASSERT_TRUE(codec::writeFileAtomic(path, original).ok());

  const sim::ParallelRunner runner{4};
  EXPECT_THROW(
      runner.forEachIndex(4,
                          [&](std::size_t i) {
                            if (i != 2) return;
                            // The hook fires after the temp write, before
                            // the rename — the instant a kill would tear a
                            // naive in-place rewrite.
                            (void)codec::writeFileAtomic(
                                path, common::Bytes{9, 9, 9, 9}, [] {
                                  throw std::runtime_error{"disk failure"};
                                });
                          }),
      std::runtime_error);

  const auto read = codec::readFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), original);
  for (const auto& entry : fs::directory_iterator{dir}) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "partial checkpoint left behind: " << entry.path();
  }
  fs::remove_all(dir);
}


TEST(ParallelRunnerTest, NestedParallelismRunsInlineOnTheWorker) {
  // A ShardedSimulation (or any other consumer of threadPool()) may itself
  // live inside a parallel campaign trial. The nested call must degrade to
  // serial on the worker thread instead of re-entering the pool — the jobs
  // budget stays with the outermost level.
  const sim::ParallelRunner runner{4};
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> nestedOffWorkerThread{0};
  runner.forEachIndex(8, [&](std::size_t outer) {
    EXPECT_TRUE(sim::ThreadPool::insideWorker());
    const std::thread::id worker = std::this_thread::get_id();
    runner.forEachIndex(8, [&, outer, worker](std::size_t inner) {
      if (std::this_thread::get_id() != worker) ++nestedOffWorkerThread;
      ++hits[outer * 8 + inner];
    });
  });
  // Every nested task ran exactly once, and none escaped its worker.
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  EXPECT_EQ(nestedOffWorkerThread.load(), 0);
}

TEST(ParallelRunnerTest, ThreadPoolIsExposedAndSharedAcrossCalls) {
  const sim::ParallelRunner runner{3};
  sim::ThreadPool& pool = runner.threadPool();
  EXPECT_EQ(&pool, &runner.threadPool());  // one pool per runner
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> ran{0};
  pool.parallelFor(11, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 11);
  EXPECT_TRUE(pool.failures().empty());
}

}  // namespace
}  // namespace blackdp
