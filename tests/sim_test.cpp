#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace blackdp::sim {
namespace {

// -------------------------------------------------------------------- time

TEST(TimeTest, DurationConstructors) {
  EXPECT_EQ(Duration::microseconds(5).us(), 5);
  EXPECT_EQ(Duration::milliseconds(2).us(), 2'000);
  EXPECT_EQ(Duration::seconds(3).us(), 3'000'000);
}

TEST(TimeTest, FromSecondsRoundsToNearestMicrosecond) {
  EXPECT_EQ(Duration::fromSeconds(0.0000014).us(), 1);
  EXPECT_EQ(Duration::fromSeconds(0.0000016).us(), 2);
  EXPECT_EQ(Duration::fromSeconds(-0.0000014).us(), -1);
}

TEST(TimeTest, DurationArithmetic) {
  const Duration a = Duration::milliseconds(3);
  const Duration b = Duration::milliseconds(2);
  EXPECT_EQ((a + b).us(), 5'000);
  EXPECT_EQ((a - b).us(), 1'000);
  EXPECT_EQ((b * 4).us(), 8'000);
}

TEST(TimeTest, DurationComparison) {
  EXPECT_LT(Duration::microseconds(1), Duration::microseconds(2));
  EXPECT_EQ(Duration::seconds(1), Duration::milliseconds(1000));
}

TEST(TimeTest, TimePointArithmetic) {
  const TimePoint t = TimePoint::fromUs(100);
  EXPECT_EQ((t + Duration::microseconds(50)).us(), 150);
  EXPECT_EQ((TimePoint::fromUs(150) - t).us(), 50);
}

TEST(TimeTest, ToSeconds) {
  EXPECT_DOUBLE_EQ(Duration::milliseconds(1500).toSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(TimePoint::fromUs(2'000'000).toSeconds(), 2.0);
}

// --------------------------------------------------------------- simulator

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now().us(), 0);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(Duration::microseconds(30), [&] { order.push_back(3); });
  simulator.schedule(Duration::microseconds(10), [&] { order.push_back(1); });
  simulator.schedule(Duration::microseconds(20), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EqualTimestampsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule(Duration::microseconds(5),
                       [&order, i] { order.push_back(i); });
  }
  simulator.run();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator simulator;
  TimePoint seen;
  simulator.schedule(Duration::milliseconds(7), [&] { seen = simulator.now(); });
  simulator.run();
  EXPECT_EQ(seen.us(), 7'000);
  EXPECT_EQ(simulator.now().us(), 7'000);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(Duration::microseconds(1), [&] {
    order.push_back(1);
    simulator.schedule(Duration::microseconds(1), [&] { order.push_back(2); });
  });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilStopsAtBound) {
  Simulator simulator;
  int ran = 0;
  simulator.schedule(Duration::microseconds(10), [&] { ++ran; });
  simulator.schedule(Duration::microseconds(20), [&] { ++ran; });
  simulator.schedule(Duration::microseconds(30), [&] { ++ran; });
  simulator.run(TimePoint::fromUs(20));
  EXPECT_EQ(ran, 2);  // the event exactly at the bound still runs
  simulator.run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  const EventHandle handle =
      simulator.schedule(Duration::microseconds(5), [&] { ran = true; });
  simulator.cancel(handle);
  simulator.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterExecutionIsNoOp) {
  Simulator simulator;
  bool ran = false;
  const EventHandle handle =
      simulator.schedule(Duration::microseconds(5), [&] { ran = true; });
  simulator.run();
  EXPECT_TRUE(ran);
  EXPECT_NO_THROW(simulator.cancel(handle));
}

TEST(SimulatorTest, CancelDefaultHandleIsNoOp) {
  Simulator simulator;
  EXPECT_NO_THROW(simulator.cancel(EventHandle{}));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simulator;
  bool ran = false;
  simulator.schedule(Duration::microseconds(-10), [&] { ran = true; });
  simulator.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(simulator.now().us(), 0);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator simulator;
  int ran = 0;
  simulator.schedule(Duration::microseconds(1), [&] { ++ran; });
  simulator.schedule(Duration::microseconds(2), [&] { ++ran; });
  EXPECT_TRUE(simulator.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(simulator.step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(simulator.step());
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator simulator;
  for (int i = 0; i < 5; ++i) {
    simulator.schedule(Duration::microseconds(i), [] {});
  }
  simulator.run();
  EXPECT_EQ(simulator.executedEvents(), 5u);
}

TEST(SimulatorTest, RunReturnsExecutedCount) {
  Simulator simulator;
  for (int i = 0; i < 3; ++i) {
    simulator.schedule(Duration::microseconds(i), [] {});
  }
  EXPECT_EQ(simulator.run(), 3u);
}

TEST(SimulatorTest, NullCallbackIsRejected) {
  Simulator simulator;
  EXPECT_THROW(simulator.schedule(Duration{}, nullptr),
               common::AssertionError);
}

// Property: for any random set of schedule times, execution is sorted.
class SimulatorOrderProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimulatorOrderProperty, ExecutionOrderIsSortedByTime) {
  Rng rng{GetParam()};
  Simulator simulator;
  std::vector<std::int64_t> executed;
  for (int i = 0; i < 200; ++i) {
    const auto when = rng.uniformInt(0, 1000);
    simulator.schedule(Duration::microseconds(when), [&executed, &simulator] {
      executed.push_back(simulator.now().us());
    });
  }
  simulator.run();
  ASSERT_EQ(executed.size(), 200u);
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrderProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.nextU64(), b.nextU64());
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformReal(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng{7};
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4'500);
  EXPECT_LT(heads, 5'500);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng{7};
  std::vector<bool> hit(10, false);
  for (int i = 0; i < 1000; ++i) hit[rng.index(10)] = true;
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }));
}

TEST(SeedSequenceTest, NamedStreamsAreIndependent) {
  const SeedSequence seeds{99};
  EXPECT_NE(seeds.deriveSeed("medium"), seeds.deriveSeed("crypto"));
  EXPECT_NE(seeds.deriveSeed("a"), seeds.deriveSeed("b"));
}

TEST(SeedSequenceTest, SameNameSameSeed) {
  const SeedSequence seeds{99};
  EXPECT_EQ(seeds.deriveSeed("medium"), seeds.deriveSeed("medium"));
}

TEST(SeedSequenceTest, DifferentMastersDiverge) {
  EXPECT_NE(SeedSequence{1}.deriveSeed("x"), SeedSequence{2}.deriveSeed("x"));
}

TEST(SeedSequenceTest, StreamsReproduce) {
  const SeedSequence seeds{5};
  Rng a = seeds.stream("s");
  Rng b = seeds.stream("s");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(DeriveTrialSeedTest, AdjacentTrialsGetDistinctUncorrelatedSeeds) {
  // Adjacent indices must not produce near-identical seeds (the campaign
  // engine derives every trial's master seed from its index).
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 256; ++i) {
    seeds.push_back(deriveTrialSeed(42, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Avalanche: consecutive indices flip roughly half the output bits.
  for (std::uint64_t i = 0; i < 64; ++i) {
    const int flipped = std::popcount(deriveTrialSeed(42, i) ^
                                      deriveTrialSeed(42, i + 1));
    EXPECT_GT(flipped, 16);
    EXPECT_LT(flipped, 48);
  }
}

TEST(DeriveTrialSeedTest, IndependentOfEvaluationOrder) {
  // A pure function of (campaignSeed, index): querying indices in any order
  // or in isolation yields the same values.
  const std::uint64_t late = deriveTrialSeed(7, 1000);
  const std::uint64_t early = deriveTrialSeed(7, 3);
  EXPECT_EQ(deriveTrialSeed(7, 1000), late);
  EXPECT_EQ(deriveTrialSeed(7, 3), early);
}

TEST(DeriveTrialSeedTest, PinnedValuesAreStableAcrossRuns) {
  // SplitMix64 golden values: resumed campaigns and cross-machine reruns
  // depend on these never changing.
  EXPECT_EQ(deriveTrialSeed(0, 0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(deriveTrialSeed(0, 1), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(deriveTrialSeed(20170605, 0), 0x8fca87c02bfbe5cdull);
  EXPECT_NE(deriveTrialSeed(1, 0), deriveTrialSeed(2, 0));
}

}  // namespace
}  // namespace blackdp::sim
