// Wire-format codec: round-trip identity for every protocol message type,
// plus malformed-input handling.
#include <gtest/gtest.h>

#include "codec/codec.hpp"

#include "aodv/messages.hpp"
#include "cluster/messages.hpp"
#include "common/assert.hpp"
#include "core/messages.hpp"
#include "crypto/trusted_authority.hpp"

namespace blackdp::codec {
namespace {

/// Encodes a payload in a frame and decodes it back; returns the decoded
/// payload downcast to T (asserting type preservation).
template <typename T>
std::shared_ptr<const T> roundTrip(std::shared_ptr<T> payload) {
  net::Frame frame{common::Address{11}, common::Address{22},
                   std::move(payload)};
  const common::Bytes wire = encodeFrame(frame);
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error().code);
  EXPECT_EQ(decoded.value().src, frame.src);
  EXPECT_EQ(decoded.value().dst, frame.dst);
  auto typed =
      std::dynamic_pointer_cast<const T>(decoded.value().payload);
  EXPECT_NE(typed, nullptr) << "decoded type mismatch";
  return typed;
}

aodv::SecureEnvelope sampleEnvelope() {
  sim::Simulator simulator;
  crypto::CryptoEngine engine{77};
  crypto::TaNetwork ta{simulator, engine};
  const auto taId = ta.addAuthority();
  const auto enrollment = ta.enroll(taId, common::NodeId{1}).value();
  aodv::SecureEnvelope envelope;
  envelope.certificate = enrollment.certificate;
  envelope.signature =
      engine.sign(enrollment.privateKey,
                  std::span<const std::uint8_t>{
                      reinterpret_cast<const std::uint8_t*>("x"), 1});
  return envelope;
}

TEST(CodecTest, RouteRequestRoundTrip) {
  auto m = std::make_shared<aodv::RouteRequest>();
  m->rreqId = common::RreqId{7};
  m->origin = common::Address{1};
  m->originSeq = 42;
  m->destination = common::Address{2};
  m->destSeq = 17;
  m->unknownDestSeq = false;
  m->hopCount = 3;
  m->ttl = 9;
  m->inquireNextHop = true;
  const auto out = roundTrip(m);
  EXPECT_EQ(out->rreqId, m->rreqId);
  EXPECT_EQ(out->originSeq, 42u);
  EXPECT_EQ(out->destSeq, 17u);
  EXPECT_FALSE(out->unknownDestSeq);
  EXPECT_EQ(out->hopCount, 3);
  EXPECT_EQ(out->ttl, 9);
  EXPECT_TRUE(out->inquireNextHop);
}

TEST(CodecTest, RouteReplyRoundTripWithEnvelope) {
  auto m = std::make_shared<aodv::RouteReply>();
  m->rreqId = common::RreqId{7};
  m->origin = common::Address{1};
  m->destination = common::Address{2};
  m->destSeq = 200;
  m->hopCount = 4;
  m->replier = common::Address{66};
  m->replierCluster = common::ClusterId{2};
  m->lifetime = sim::Duration::seconds(3);
  m->claimedNextHop = common::Address{67};
  m->envelope = sampleEnvelope();
  const auto out = roundTrip(m);
  EXPECT_EQ(out->destSeq, 200u);
  EXPECT_EQ(out->replier, common::Address{66});
  EXPECT_EQ(out->claimedNextHop, common::Address{67});
  ASSERT_TRUE(out->envelope.has_value());
  EXPECT_EQ(*out->envelope, *m->envelope);
  // Canonical (signed) bytes survive the trip — so signatures still verify.
  EXPECT_EQ(out->canonicalBytes(), m->canonicalBytes());
}

TEST(CodecTest, RouteReplyWithoutEnvelope) {
  auto m = std::make_shared<aodv::RouteReply>();
  m->destSeq = 1;
  const auto out = roundTrip(m);
  EXPECT_FALSE(out->envelope.has_value());
}

TEST(CodecTest, RouteErrorRoundTrip) {
  auto m = std::make_shared<aodv::RouteError>();
  m->destination = common::Address{5};
  m->destSeq = 9;
  m->origin = common::Address{1};
  const auto out = roundTrip(m);
  EXPECT_EQ(out->destination, common::Address{5});
  EXPECT_EQ(out->destSeq, 9u);
}

TEST(CodecTest, DataPacketWithNestedInnerPayload) {
  auto hello = std::make_shared<core::AuthHello>();
  hello->helloId = 99;
  hello->origin = common::Address{1};
  hello->destination = common::Address{2};
  hello->envelope = sampleEnvelope();

  auto m = std::make_shared<aodv::DataPacket>();
  m->origin = common::Address{1};
  m->destination = common::Address{2};
  m->packetId = 1234;
  m->hopsTraversed = 2;
  m->bodyBytes = 0;
  m->inner = hello;

  const auto out = roundTrip(m);
  EXPECT_EQ(out->packetId, 1234u);
  const auto* innerHello =
      dynamic_cast<const core::AuthHello*>(out->inner.get());
  ASSERT_NE(innerHello, nullptr);
  EXPECT_EQ(innerHello->helloId, 99u);
  ASSERT_TRUE(innerHello->envelope.has_value());
  EXPECT_EQ(*innerHello->envelope, *hello->envelope);
}

TEST(CodecTest, HelloBeaconRoundTrip) {
  auto m = std::make_shared<aodv::HelloBeacon>();
  m->origin = common::Address{3};
  m->originSeq = 12;
  const auto out = roundTrip(m);
  EXPECT_EQ(out->origin, common::Address{3});
  EXPECT_EQ(out->originSeq, 12u);
}

TEST(CodecTest, JoinRequestRoundTripPreservesKinematics) {
  auto m = std::make_shared<cluster::JoinRequest>();
  m->vehicle = common::Address{8};
  m->position = {1234.567, 89.001};
  m->speedMps = 23.456;
  m->direction = mobility::Direction::kWestbound;
  const auto out = roundTrip(m);
  EXPECT_NEAR(out->position.x, 1234.567, 0.001);
  EXPECT_NEAR(out->position.y, 89.001, 0.001);
  EXPECT_NEAR(out->speedMps, 23.456, 0.001);
  EXPECT_EQ(out->direction, mobility::Direction::kWestbound);
}

TEST(CodecTest, JoinReplyCarriesRevocationList) {
  auto m = std::make_shared<cluster::JoinReply>();
  m->vehicle = common::Address{8};
  m->cluster = common::ClusterId{3};
  m->clusterHeadAddress = common::Address{103};
  m->activeRevocations.push_back(
      {common::Address{66}, common::CertSerial{5},
       sim::TimePoint::fromUs(1'000'000)});
  m->activeRevocations.push_back(
      {common::Address{67}, common::CertSerial{6},
       sim::TimePoint::fromUs(2'000'000)});
  const auto out = roundTrip(m);
  ASSERT_EQ(out->activeRevocations.size(), 2u);
  EXPECT_EQ(out->activeRevocations[0], m->activeRevocations[0]);
  EXPECT_EQ(out->activeRevocations[1], m->activeRevocations[1]);
}

TEST(CodecTest, LeaveAndAnnouncementRoundTrip) {
  auto leave = std::make_shared<cluster::LeaveNotice>();
  leave->vehicle = common::Address{8};
  EXPECT_EQ(roundTrip(leave)->vehicle, common::Address{8});

  auto announce = std::make_shared<cluster::RevocationAnnouncement>();
  announce->notice = {common::Address{66}, common::CertSerial{5},
                      sim::TimePoint::fromUs(1'000'000)};
  EXPECT_EQ(roundTrip(announce)->notice, announce->notice);
}

TEST(CodecTest, DetectionRequestRoundTrip) {
  auto m = std::make_shared<core::DetectionRequest>();
  m->reporter = common::Address{1};
  m->reporterCluster = common::ClusterId{1};
  m->suspect = common::Address{66};
  m->suspectCluster = common::ClusterId{2};
  m->envelope = sampleEnvelope();
  const auto out = roundTrip(m);
  EXPECT_EQ(out->suspect, common::Address{66});
  EXPECT_EQ(out->canonicalBytes(), m->canonicalBytes());
}

TEST(CodecTest, DetectionControlMessagesRoundTrip) {
  auto fwd = std::make_shared<core::ForwardedDetection>();
  fwd->session = common::DetectionSessionId{0x100000001ull};
  fwd->reporter = common::Address{1};
  fwd->reporterCluster = common::ClusterId{1};
  fwd->suspect = common::Address{66};
  fwd->stage = 1;
  fwd->lastSeenSeq = 250;
  fwd->packetsSoFar = 4;
  fwd->forwardCount = 1;
  fwd->startedAt = sim::TimePoint::fromUs(5'000);
  const auto fwdOut = roundTrip(fwd);
  EXPECT_EQ(fwdOut->session, fwd->session);
  EXPECT_EQ(fwdOut->lastSeenSeq, 250u);
  EXPECT_EQ(fwdOut->startedAt.us(), 5'000);

  auto result = std::make_shared<core::DetectionResult>();
  result->verdict = core::Verdict::kCooperativeBlackHole;
  result->accomplice = common::Address{67};
  result->packetsUsed = 11;
  const auto resultOut = roundTrip(result);
  EXPECT_EQ(resultOut->verdict, core::Verdict::kCooperativeBlackHole);
  EXPECT_EQ(resultOut->packetsUsed, 11u);

  auto response = std::make_shared<core::DetectionResponse>();
  response->verdict = core::Verdict::kSingleBlackHole;
  const auto responseOut = roundTrip(response);
  EXPECT_EQ(responseOut->verdict, core::Verdict::kSingleBlackHole);
}

// ------------------------------------------------------------- bad input

TEST(CodecTest, BadMagicRejected) {
  const common::Bytes junk{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto decoded = decodeFrame({junk.data(), junk.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bad-magic");
}

TEST(CodecTest, TruncatedFrameRejected) {
  auto m = std::make_shared<aodv::RouteRequest>();
  const common::Bytes wire =
      encodeFrame(net::Frame{common::Address{1}, common::Address{2}, m});
  const auto decoded = decodeFrame({wire.data(), wire.size() - 3});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "truncated");
}

TEST(CodecTest, TrailingBytesRejected) {
  auto m = std::make_shared<aodv::RouteRequest>();
  common::Bytes wire =
      encodeFrame(net::Frame{common::Address{1}, common::Address{2}, m});
  wire.push_back(0xFF);
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "trailing-bytes");
}

TEST(CodecTest, UnknownTagRejected) {
  common::ByteWriter w;
  w.writeU32(0x42445046);
  w.writeU8(1);
  w.writeId(common::Address{1});
  w.writeId(common::Address{2});
  w.writeU8(200);  // no such tag
  const common::Bytes wire = std::move(w).take();
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "malformed");
}

TEST(CodecTest, WrongVersionRejected) {
  common::ByteWriter w;
  w.writeU32(0x42445046);
  w.writeU8(9);
  const common::Bytes wire = std::move(w).take();
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bad-version");
}

TEST(CodecTest, EncodingIsDeterministic) {
  auto m = std::make_shared<aodv::RouteReply>();
  m->destSeq = 5;
  m->envelope = sampleEnvelope();
  const net::Frame frame{common::Address{1}, common::Address{2}, m};
  EXPECT_EQ(encodeFrame(frame), encodeFrame(frame));
}

// ------------------------------------------------- hardened decode paths

namespace {

/// A chain of DataPackets nested `depth` levels deep (depth 0 = no inner).
std::shared_ptr<aodv::DataPacket> nestedData(int depth) {
  auto packet = std::make_shared<aodv::DataPacket>();
  packet->origin = common::Address{1};
  packet->destination = common::Address{2};
  packet->packetId = static_cast<std::uint64_t>(depth);
  if (depth > 0) packet->inner = nestedData(depth - 1);
  return packet;
}

}  // namespace

TEST(CodecHardeningTest, ModestPayloadNestingRoundTrips) {
  const net::Frame frame{common::Address{1}, common::Address{2},
                         nestedData(3)};
  const common::Bytes wire = encodeFrame(frame);
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_TRUE(decoded.ok()) << decoded.error().code;
  // Walk back down: every level survived.
  auto packet =
      std::dynamic_pointer_cast<const aodv::DataPacket>(decoded.value().payload);
  int depth = 0;
  while (packet->inner != nullptr) {
    packet = std::dynamic_pointer_cast<const aodv::DataPacket>(packet->inner);
    ASSERT_NE(packet, nullptr);
    ++depth;
  }
  EXPECT_EQ(depth, 3);
}

TEST(CodecHardeningTest, RunawayPayloadNestingIsMalformedNotStackOverflow) {
  // A crafted frame nesting far past any honest use (honest traffic nests
  // once) must come back as a typed error instead of recursing per level.
  const net::Frame frame{common::Address{1}, common::Address{2},
                         nestedData(64)};
  const common::Bytes wire = encodeFrame(frame);
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "malformed");
  EXPECT_NE(decoded.error().detail.find("nesting"), std::string::npos);
}

TEST(CodecHardeningTest, VerdictOutOfRangeRejectedInDetectionResponse) {
  auto response = std::make_shared<core::DetectionResponse>();
  response->verdict = core::Verdict::kSingleBlackHole;
  const net::Frame frame{common::Address{1}, common::Address{2}, response};
  common::Bytes wire = encodeFrame(frame);
  // Wire tail of a DetectionResponse: ... verdict(1) accomplice(8).
  wire[wire.size() - 9] = 0x07;
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "malformed");
  EXPECT_NE(decoded.error().detail.find("verdict"), std::string::npos);
}

TEST(CodecHardeningTest, VerdictOutOfRangeRejectedInDetectionResult) {
  auto result = std::make_shared<core::DetectionResult>();
  result->verdict = core::Verdict::kUnreachable;
  const net::Frame frame{common::Address{1}, common::Address{2}, result};
  common::Bytes wire = encodeFrame(frame);
  // Wire tail of a DetectionResult: ... verdict(1) accomplice(8) packets(4).
  wire[wire.size() - 13] = 0xFF;
  const auto decoded = decodeFrame({wire.data(), wire.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "malformed");
}

TEST(CodecHardeningTest, EveryTruncationOfADetectionRequestIsTyped) {
  auto dreq = std::make_shared<core::DetectionRequest>();
  dreq->reporter = common::Address{3};
  dreq->suspect = common::Address{4};
  dreq->nonce = 99;
  dreq->envelope = sampleEnvelope();
  const net::Frame frame{common::Address{1}, common::Address{2}, dreq};
  const common::Bytes wire = encodeFrame(frame);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto decoded = decodeFrame({wire.data(), len});
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    const std::string& code = decoded.error().code;
    EXPECT_TRUE(code == "truncated" || code == "bad-magic" ||
                code == "bad-version" || code == "malformed")
        << "prefix length " << len << " gave " << code;
  }
}

}  // namespace
}  // namespace blackdp::codec
