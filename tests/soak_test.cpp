// Chaos-soak harness tests: plan purity, deterministic replay, and the
// injected-violation path that proves the invariants can actually fire.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.hpp"
#include "soak/soak_runner.hpp"

namespace blackdp::soak {
namespace {

SoakOptions quietOptions(std::uint64_t masterSeed) {
  SoakOptions options;
  options.masterSeed = masterSeed;
  return options;
}

TEST(SoakRunnerTest, SeedContractIsTheSharedTrialDerivation) {
  EXPECT_EQ(SoakRunner::seedForTrial(7, 3), sim::deriveTrialSeed(7, 3));
  EXPECT_NE(SoakRunner::seedForTrial(7, 3), SoakRunner::seedForTrial(7, 4));
  EXPECT_NE(SoakRunner::seedForTrial(7, 3), SoakRunner::seedForTrial(8, 3));
}

TEST(SoakRunnerTest, PlansArePureInSeedAndIndex) {
  const SoakRunner runner{quietOptions(11)};
  const SoakRunner same{quietOptions(11)};
  const SoakRunner other{quietOptions(12)};

  bool anyDiffers = false;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const SoakRunner::Plan a = runner.planTrial(trial);
    const SoakRunner::Plan b = same.planTrial(trial);
    EXPECT_EQ(a.description, b.description) << "trial " << trial;
    EXPECT_EQ(a.config.seed, b.config.seed);
    EXPECT_EQ(a.config.vehicleCount, b.config.vehicleCount);
    EXPECT_EQ(a.verifyRounds, b.verifyRounds);
    anyDiffers =
        anyDiffers || a.description != other.planTrial(trial).description;
  }
  // A different master seed draws different plans (over 8 trials, some
  // dimension must move).
  EXPECT_TRUE(anyDiffers);
}

TEST(SoakRunnerTest, TrialReplaysDeterministically) {
  const SoakRunner runner{quietOptions(21)};
  const SoakTrialReport first = runner.runTrial(0);
  const SoakTrialReport again = runner.runTrial(0);

  EXPECT_EQ(first.description, again.description);
  EXPECT_EQ(first.trialSeed, again.trialSeed);
  ASSERT_EQ(first.violations.size(), again.violations.size());
  for (std::size_t i = 0; i < first.violations.size(); ++i) {
    EXPECT_EQ(first.violations[i].invariant, again.violations[i].invariant);
    EXPECT_EQ(first.violations[i].detail, again.violations[i].detail);
  }
}

TEST(SoakRunnerTest, CleanTrialHoldsAllInvariants) {
  const SoakRunner runner{quietOptions(31)};
  const SoakTrialReport report = runner.runTrial(0);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front().invariant << ": "
      << report.violations.front().detail;
}

TEST(SoakRunnerTest, InjectedViolationFiresAndReplays) {
  SoakOptions options = quietOptions(41);
  options.injectViolation = true;
  const SoakRunner runner{options};

  const SoakTrialReport report = runner.runTrial(0);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().invariant, "honest-isolation");
  EXPECT_EQ(report.violations.front().trialSeed,
            SoakRunner::seedForTrial(41, 0));

  // The printed replay line is (seed, trial): a second run must reproduce
  // the identical violation.
  const SoakTrialReport replay = runner.runTrial(0);
  ASSERT_EQ(replay.violations.size(), report.violations.size());
  EXPECT_EQ(replay.violations.front().detail, report.violations.front().detail);
}

TEST(SoakRunnerTest, RunHonorsMaxTrialsAndReportsViaLog) {
  SoakOptions options = quietOptions(51);
  options.maxTrials = 2;
  options.jobs = 2;
  std::ostringstream log;
  options.log = &log;
  const SoakRunner runner{options};

  const SoakResult result = runner.run();
  EXPECT_EQ(result.trialsRun, 2u);
  EXPECT_TRUE(result.passed());
  EXPECT_NE(log.str().find("soak trial 0"), std::string::npos);
  EXPECT_NE(log.str().find("soak trial 1"), std::string::npos);
}

TEST(SoakRunnerTest, FailFastStopsSchedulingAfterViolations) {
  SoakOptions options = quietOptions(61);
  options.injectViolation = true;  // every trial violates
  options.maxTrials = 64;
  options.jobs = 2;
  const SoakRunner runner{options};

  const SoakResult result = runner.run();
  EXPECT_FALSE(result.passed());
  // Only the first batch ran.
  EXPECT_LE(result.trialsRun, 2u);
}

TEST(SoakRunnerTest, ReplayTraceMatchesTheReconciledCounters) {
  const SoakRunner runner{quietOptions(71)};
  std::vector<obs::TraceEvent> trace;
  const SoakTrialReport report = runner.runTrial(0, &trace);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_FALSE(trace.empty());
}

}  // namespace
}  // namespace blackdp::soak
