// Campaign engine pins: spec grammar and expansion, the seed-derivation
// contract (axes pinned at defaults never perturb seeds), manifest row
// round-trips, resume-after-truncation byte-identity, jobs-count
// independence, builtin-vs-campaigns/*.json sync, and metrics equality with
// the pre-port hand-rolled sensitivity sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/builtin.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "core/telemetry.hpp"
#include "scenario/highway_scenario.hpp"

namespace blackdp {
namespace {

namespace fs = std::filesystem;

// A fast four-trial detection campaign used by the IO-heavy tests.
constexpr std::string_view kTinySpec = R"json({
  "name": "tiny",
  "experiment": "detection",
  "seed": 99,
  "trials": 2,
  "base": {"vehicle_count": 40, "first_evasive_cluster": 99},
  "axes": [{"key": "attacker_cluster", "values": [2, 3]}]
})json";

campaign::CampaignSpec parseOrDie(std::string_view text) {
  std::string error;
  std::optional<campaign::CampaignSpec> spec =
      campaign::parseCampaignSpec(text, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return *spec;
}

std::string slurp(const fs::path& path) {
  std::ifstream in{path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fresh per-test output directory under the gtest temp root.
fs::path makeOutDir(std::string_view tag) {
  const fs::path dir =
      fs::path{::testing::TempDir()} / ("campaign_" + std::string{tag});
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(CampaignSpecTest, ParsesAndExpandsTheCartesianProduct) {
  const campaign::CampaignSpec spec = parseOrDie(kTinySpec);
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.experiment, campaign::ExperimentKind::kDetection);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.trials, 2u);

  const auto treatments = campaign::expandTreatments(spec);
  ASSERT_TRUE(treatments.has_value());
  ASSERT_EQ(treatments->size(), 2u);
  EXPECT_EQ((*treatments)[0].label, "attacker_cluster=2");
  EXPECT_EQ((*treatments)[1].label, "attacker_cluster=3");
  EXPECT_EQ((*treatments)[0].config.scenario.vehicleCount, 40u);
  EXPECT_EQ((*treatments)[1].config.scenario.attackerCluster->value(), 3u);
  EXPECT_NE((*treatments)[0].configHash, (*treatments)[1].configHash);
  // trial ids flatten treatment-major.
  EXPECT_EQ(campaign::trialId(spec, 1, 1), 3u);
}

TEST(CampaignSpecTest, RejectsUnknownKeysAndBadValues) {
  std::string error;
  EXPECT_FALSE(campaign::parseCampaignSpec("not json", &error).has_value());
  EXPECT_FALSE(
      campaign::parseCampaignSpec(R"({"name":"x","bogus":1})", &error)
          .has_value());
  EXPECT_FALSE(campaign::parseCampaignSpec(
                   R"({"name":"x","axes":[{"key":"no_such_knob",
                       "values":[1]}]})",
                   &error)
                   .has_value());
  EXPECT_FALSE(campaign::parseCampaignSpec(
                   R"({"name":"x","base":{"vehicle_count":-5}})", &error)
                   .has_value());
  EXPECT_FALSE(campaign::parseCampaignSpec(
                   R"({"name":"x","base":{"fault_preset":"nope"}})", &error)
                   .has_value());
}

TEST(CampaignSpecTest, AxisPinnedAtDefaultKeepsHashAndSeeds) {
  // The seed-derivation contract: hashing the *full* resolved knob set means
  // sweeping a knob over its default value yields the same treatment hash —
  // and therefore the same per-trial seeds — as not sweeping it at all.
  const campaign::CampaignSpec plain = parseOrDie(
      R"json({"name": "c", "seed": 5, "trials": 3})json");
  const campaign::CampaignSpec pinned = parseOrDie(
      R"json({"name": "c", "seed": 5, "trials": 3,
              "axes": [{"key": "vehicle_count", "values": [100]}]})json");

  const auto plainT = campaign::expandTreatments(plain);
  const auto pinnedT = campaign::expandTreatments(pinned);
  ASSERT_TRUE(plainT.has_value() && pinnedT.has_value());
  ASSERT_EQ(plainT->size(), 1u);
  ASSERT_EQ(pinnedT->size(), 1u);
  EXPECT_EQ((*plainT)[0].configHash, (*pinnedT)[0].configHash);
  for (std::uint32_t rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(campaign::trialSeed(plain, (*plainT)[0], rep),
              campaign::trialSeed(pinned, (*pinnedT)[0], rep));
  }
}

TEST(CampaignSpecTest, ObjectAxisValuesBundleSeveralKnobs) {
  const campaign::CampaignSpec spec = parseOrDie(
      campaign::findBuiltinSpec("sensitivity")->json);
  const auto treatments = campaign::expandTreatments(spec);
  ASSERT_TRUE(treatments.has_value());
  ASSERT_EQ(treatments->size(), 12u);  // 4 fleets x 3 radio bundles
  for (const campaign::Treatment& t : *treatments) {
    EXPECT_EQ(t.config.scenario.transmissionRangeM,
              t.config.scenario.clusterLengthM);
    EXPECT_EQ(t.config.scenario.evasion.firstEvasiveCluster, 99u);
  }
}

TEST(CampaignSpecTest, FaultPresetKnobInstallsAPlan) {
  campaign::ResolvedConfig config;
  const auto preset = obs::JsonValue::parse(R"("burst_medium")");
  ASSERT_TRUE(preset.has_value());
  ASSERT_TRUE(campaign::applyKnob(config, "fault_preset", *preset));
  EXPECT_EQ(config.faultPreset, "burst_medium");
  EXPECT_FALSE(config.scenario.faults.empty());

  std::string error;
  const auto bogus = obs::JsonValue::parse(R"("not_a_preset")");
  EXPECT_FALSE(campaign::applyKnob(config, "fault_preset", *bogus, &error));
}

TEST(CampaignManifestTest, RowRoundTripsByteExactly) {
  obs::MetricsRegistry registry;
  registry.counter("verify.outcome.confirmed").add(2);
  registry.gauge("g.x").set(0.1);
  registry.histogram("h.lat", {1.0, 2.0, 4.0}).observe(1.5);
  registry.histogram("h.lat", {1.0, 2.0, 4.0}).observe(9.0);

  campaign::TrialRecord record;
  record.trial = 7;
  record.treatment = 3;
  record.rep = 1;
  record.seed = 0xdeadbeefcafef00dull;
  record.configHash = "0123456789abcdef";
  record.label = R"(attack=single,loss="weird")";
  record.attackLaunched = true;
  record.confirmedOnAttacker = true;
  record.falsePositive = false;
  record.detectionPackets = 8;
  record.verdict = "single-black-hole";
  record.framesDelivered = 12345;
  record.telemetry = registry.snapshot();

  const std::string line = campaign::manifestRowLine(record);
  const std::optional<campaign::TrialRecord> parsed =
      campaign::parseManifestRow(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(campaign::manifestRowLine(*parsed), line);
  EXPECT_EQ(parsed->telemetry.toJson(), record.telemetry.toJson());
  EXPECT_EQ(parsed->seed, record.seed);
  EXPECT_EQ(parsed->label, record.label);
}

TEST(CampaignManifestTest, ReaderStopsAtTruncatedLine) {
  const campaign::CampaignSpec spec = parseOrDie(kTinySpec);
  campaign::TrialRecord record;
  record.configHash = "x";
  const fs::path dir = makeOutDir("trunc_reader");
  const fs::path path = dir / "m.jsonl";
  {
    std::ofstream out{path};
    out << campaign::manifestHeaderLine(spec, 2) << '\n';
    out << campaign::manifestRowLine(record) << '\n';
    out << R"({"trial":1,"treatment":0,"rep":1,"seed":)";  // cut mid-write
  }
  const auto contents = campaign::readManifest(path.string());
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->header.campaign, "tiny");
  EXPECT_EQ(contents->rows.size(), 1u);
  EXPECT_EQ(contents->truncatedAtLine, 3u);
}

TEST(CampaignRunnerTest, DryRunExpandsWithoutExecuting) {
  const campaign::CampaignSpec spec = parseOrDie(kTinySpec);
  campaign::CampaignOptions options;
  options.dryRun = true;
  const campaign::CampaignResult result =
      campaign::CampaignRunner{options}.run(spec);
  EXPECT_EQ(result.trialsTotal, 4u);
  EXPECT_EQ(result.trialsRun, 0u);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].trials, 0u);
  EXPECT_TRUE(result.benchPath.empty());
}

// The full determinism pin: an uninterrupted --jobs 1 run, an uninterrupted
// --jobs 4 run, and a truncated-then-resumed run must all produce the same
// manifest and BENCH JSON, byte for byte.
TEST(CampaignRunnerTest, ResumeAndJobsCountAreByteInvisible) {
  const campaign::CampaignSpec spec = parseOrDie(kTinySpec);

  const auto runInto = [&](const fs::path& dir, unsigned jobs, bool resume) {
    campaign::CampaignOptions options;
    options.jobs = jobs;
    options.outDir = dir.string();
    options.resume = resume;
    options.pinSidecar = true;
    return campaign::CampaignRunner{options}.run(spec);
  };

  const fs::path serialDir = makeOutDir("serial");
  const campaign::CampaignResult serial = runInto(serialDir, 1, false);
  EXPECT_EQ(serial.trialsRun, 4u);
  const std::string manifestBytes =
      slurp(serialDir / "tiny.manifest.jsonl");
  const std::string benchBytes = slurp(serialDir / "BENCH_tiny.json");
  ASSERT_FALSE(manifestBytes.empty());
  ASSERT_FALSE(benchBytes.empty());

  const fs::path parallelDir = makeOutDir("parallel");
  (void)runInto(parallelDir, 4, false);
  EXPECT_EQ(slurp(parallelDir / "tiny.manifest.jsonl"), manifestBytes);
  EXPECT_EQ(slurp(parallelDir / "BENCH_tiny.json"), benchBytes);

  // Interrupt: keep the header and the first two rows, then resume.
  const fs::path resumeDir = makeOutDir("resume");
  std::istringstream lines{manifestBytes};
  std::string line;
  std::ofstream partial{resumeDir / "tiny.manifest.jsonl"};
  for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
    partial << line << '\n';
  }
  partial.close();

  const campaign::CampaignResult resumed = runInto(resumeDir, 4, true);
  EXPECT_EQ(resumed.trialsResumed, 2u);
  EXPECT_EQ(resumed.trialsRun, 2u);
  EXPECT_EQ(slurp(resumeDir / "tiny.manifest.jsonl"), manifestBytes);
  EXPECT_EQ(slurp(resumeDir / "BENCH_tiny.json"), benchBytes);
}

// A missing --out directory must be created, never silently swallowed
// (regression: ofstream open failures used to leave a "successful" run
// with no manifest and no bench file on disk).
TEST(CampaignRunnerTest, CreatesTheOutputDirectoryOnDemand) {
  const campaign::CampaignSpec spec = parseOrDie(kTinySpec);
  const fs::path root = makeOutDir("mkdir");
  const fs::path nested = root / "does" / "not" / "exist";
  campaign::CampaignOptions options;
  options.outDir = nested.string();
  options.pinSidecar = true;
  const campaign::CampaignResult result =
      campaign::CampaignRunner{options}.run(spec);
  EXPECT_EQ(result.manifestPath, (nested / "tiny.manifest.jsonl").string());
  EXPECT_TRUE(fs::exists(nested / "tiny.manifest.jsonl"));
  EXPECT_TRUE(fs::exists(nested / "BENCH_tiny.json"));
}

TEST(CampaignRunnerTest, ResumeRejectsAManifestFromADifferentSpec) {
  const campaign::CampaignSpec spec = parseOrDie(kTinySpec);
  const fs::path dir = makeOutDir("mismatch");
  campaign::CampaignOptions options;
  options.outDir = dir.string();
  options.pinSidecar = true;
  (void)campaign::CampaignRunner{options}.run(spec);

  campaign::CampaignSpec edited = parseOrDie(kTinySpec);
  edited.seed = 100;  // different campaign seed -> different trial seeds
  options.resume = true;
  EXPECT_THROW((void)campaign::CampaignRunner{options}.run(edited),
               std::runtime_error);
}

// Metrics equality with the pre-port hand-rolled sensitivity sweep, pinned
// on the paper's dense operating point (100 vehicles, 1000 m range) where
// detection is saturated: the ported campaign must reproduce the reference
// loop's confusion cell exactly.
TEST(CampaignPortTest, SensitivityCellMatchesPrePortReferenceLoop) {
  constexpr std::uint32_t kTrials = 2;

  // Reference: the deleted runSensitivityTrial loop, verbatim (old per-trial
  // seed formula seedBase + 977*fleet + range + trial).
  std::uint32_t refLaunched = 0;
  std::uint32_t refDetected = 0;
  std::uint32_t refFalsePositives = 0;
  for (std::uint32_t trial = 0; trial < kTrials; ++trial) {
    scenario::ScenarioConfig config;
    config.seed = 31'000 + 977 * 100 + 1000 + trial;
    config.vehicleCount = 100;
    config.transmissionRangeM = 1000.0;
    config.clusterLengthM = 1000.0;
    config.attack = scenario::AttackType::kSingle;
    config.attackerCluster = common::ClusterId{2};
    config.evasion.firstEvasiveCluster = 99;
    scenario::HighwayScenario world(config);
    (void)world.runVerification();
    const scenario::DetectionSummary summary = world.detectionSummary();
    if (world.primaryAttacker()->attacker->attackStats().rrepsForged > 0) {
      ++refLaunched;
    }
    if (summary.confirmedOnAttacker) ++refDetected;
    if (summary.falsePositive) ++refFalsePositives;
  }

  // Ported: the built-in sensitivity campaign's (100, 1000 m) treatment.
  campaign::CampaignSpec spec =
      parseOrDie(campaign::findBuiltinSpec("sensitivity")->json);
  spec.trials = kTrials;
  campaign::CampaignOptions options;
  options.writeManifest = false;
  options.writeBench = false;
  const campaign::CampaignResult result =
      campaign::CampaignRunner{options}.run(spec);

  const campaign::TreatmentCell* cell = nullptr;
  for (const campaign::TreatmentCell& c : result.cells) {
    if (c.treatment.config.scenario.vehicleCount == 100 &&
        c.treatment.config.scenario.transmissionRangeM == 1000.0) {
      cell = &c;
    }
  }
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->attacksLaunched, refLaunched);
  EXPECT_EQ(cell->detected, refDetected);
  EXPECT_EQ(cell->falsePositives, refFalsePositives);
  // Saturated operating point: the paper's 100%-detection/0-FP cell.
  EXPECT_EQ(cell->detected, kTrials);
  EXPECT_EQ(cell->falsePositives, 0u);
  EXPECT_EQ(cell->matrix.tp(), kTrials);
}

TEST(CampaignBuiltinTest, BuiltinsStayInSyncWithCampaignFiles) {
  for (const campaign::BuiltinSpec& builtin : campaign::builtinSpecs()) {
    const fs::path path =
        fs::path{BLACKDP_CAMPAIGNS_DIR} / (std::string{builtin.name} + ".json");
    ASSERT_TRUE(fs::exists(path)) << path;
    const campaign::CampaignSpec fromBuiltin = parseOrDie(builtin.json);
    const campaign::CampaignSpec fromFile = parseOrDie(slurp(path));
    EXPECT_EQ(fromBuiltin.name, fromFile.name);
    EXPECT_EQ(fromBuiltin.experiment, fromFile.experiment);
    EXPECT_EQ(fromBuiltin.seed, fromFile.seed);
    EXPECT_EQ(fromBuiltin.trials, fromFile.trials);
    const auto builtinT = campaign::expandTreatments(fromBuiltin);
    const auto fileT = campaign::expandTreatments(fromFile);
    ASSERT_TRUE(builtinT.has_value() && fileT.has_value());
    ASSERT_EQ(builtinT->size(), fileT->size());
    for (std::size_t i = 0; i < builtinT->size(); ++i) {
      EXPECT_EQ((*builtinT)[i].configHash, (*fileT)[i].configHash)
          << builtin.name << " treatment " << i;
      EXPECT_EQ((*builtinT)[i].label, (*fileT)[i].label);
    }
  }
}

TEST(CampaignFig5Test, ScriptedPlacementsRunUnderTheEngine) {
  // One scripted placement per kind keeps this fast; the full ten-case grid
  // is the fig5 builtin exercised by bench/fig5 and the CI smoke stage.
  const campaign::CampaignSpec spec = parseOrDie(R"json({
    "name": "fig5_mini",
    "experiment": "fig5",
    "seed": 11,
    "trials": 1,
    "axes": [{"key": "case", "values": [
      {"attack": "none", "suspect_in_reporter_cluster": true, "flees": false},
      {"attack": "single", "suspect_in_reporter_cluster": true, "flees": false}
    ]}]
  })json");
  campaign::CampaignOptions options;
  options.writeManifest = false;
  options.writeBench = false;
  const campaign::CampaignResult result =
      campaign::CampaignRunner{options}.run(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  // No attacker: nothing confirmed, a handful of detection packets.
  EXPECT_EQ(result.cells[0].detected, 0u);
  EXPECT_EQ(result.cells[0].falsePositives, 0u);
  EXPECT_GE(result.cells[0].packetsMin, 1u);
  // Single black hole in the reporter's cluster: confirmed.
  EXPECT_EQ(result.cells[1].detected, 1u);
  EXPECT_GE(result.cells[1].packetsMin, result.cells[0].packetsMin);
}

}  // namespace
}  // namespace blackdp
