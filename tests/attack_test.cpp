// Black hole agent behaviour: forged replies, data dropping, fake Hello
// replies, evasion modes, cooperative roles.
#include <gtest/gtest.h>

#include <memory>

#include "attack/black_hole_agent.hpp"
#include "core/messages.hpp"
#include "net/node.hpp"

namespace blackdp::attack {
namespace {

net::MediumConfig quietMedium() {
  net::MediumConfig c;
  c.maxJitter = sim::Duration{};
  return c;
}

/// Victim + attacker, two nodes in range. The "victim" here is a bare node
/// that records frames — the tests drive the attacker with crafted RREQs.
class AttackRig {
 public:
  explicit AttackRig(AttackRole role, BlackHoleConfig config = {})
      : medium_{simulator_, sim::Rng{5}, quietMedium()} {
    victim_ = std::make_unique<net::BasicNode>(
        simulator_, medium_, common::NodeId{1},
        mobility::LinearMotion::stationary({0.0, 0.0}));
    victim_->setLocalAddress(common::Address{10});
    victim_->addHandler([this](const net::Frame& frame) {
      received_.push_back(frame);
      return true;
    });

    attackerNode_ = std::make_unique<net::BasicNode>(
        simulator_, medium_, common::NodeId{2},
        mobility::LinearMotion::stationary({500.0, 0.0}));
    attackerNode_->setLocalAddress(common::Address{66});
    agent_ = std::make_unique<BlackHoleAgent>(simulator_, *attackerNode_,
                                              role, config, sim::Rng{9});
  }

  /// Broadcasts an RREQ from the victim; returns RREPs that came back.
  std::vector<aodv::RouteReply> flood(aodv::SeqNum destSeq, bool unknownSeq,
                                      std::uint32_t rreqId = 1,
                                      bool inquire = false) {
    auto rreq = std::make_shared<aodv::RouteRequest>();
    rreq->rreqId = common::RreqId{rreqId};
    rreq->origin = common::Address{10};
    rreq->originSeq = 1;
    rreq->destination = common::Address{999};
    rreq->destSeq = destSeq;
    rreq->unknownDestSeq = unknownSeq;
    rreq->inquireNextHop = inquire;
    victim_->broadcast(rreq);
    run();
    return collectRreps();
  }

  /// Unicast probe (what a CH detector sends).
  std::vector<aodv::RouteReply> probe(aodv::SeqNum destSeq, bool unknownSeq,
                                      std::uint32_t rreqId,
                                      bool inquire = false) {
    auto rreq = std::make_shared<aodv::RouteRequest>();
    rreq->rreqId = common::RreqId{rreqId};
    rreq->origin = common::Address{10};
    rreq->originSeq = 1;
    rreq->destination = common::Address{999};
    rreq->destSeq = destSeq;
    rreq->unknownDestSeq = unknownSeq;
    rreq->ttl = 1;
    rreq->inquireNextHop = inquire;
    victim_->sendTo(common::Address{66}, rreq);
    run();
    return collectRreps();
  }

  void run() { simulator_.run(simulator_.now() + sim::Duration::seconds(1)); }

  std::vector<aodv::RouteReply> collectRreps() {
    std::vector<aodv::RouteReply> out;
    for (const net::Frame& frame : received_) {
      if (const auto* rrep = net::payloadAs<aodv::RouteReply>(frame.payload)) {
        out.push_back(*rrep);
      }
    }
    received_.clear();
    return out;
  }

  sim::Simulator simulator_;
  net::WirelessMedium medium_;
  std::unique_ptr<net::BasicNode> victim_;
  std::unique_ptr<net::BasicNode> attackerNode_;
  std::unique_ptr<BlackHoleAgent> agent_;
  std::vector<net::Frame> received_;
};

TEST(BlackHoleTest, ForgesHighSequenceNumberReply) {
  AttackRig rig{AttackRole::kSingle};
  const auto rreps = rig.flood(0, /*unknownSeq=*/true);
  ASSERT_GE(rreps.size(), 1u);
  EXPECT_EQ(rreps[0].destSeq, 200u);  // boost over the unknown baseline
  EXPECT_EQ(rreps[0].replier, common::Address{66});
  EXPECT_EQ(rreps[0].destination, common::Address{999});
}

TEST(BlackHoleTest, ForgedSeqTopsRequestedSeq) {
  AttackRig rig{AttackRole::kSingle};
  const auto rreps = rig.flood(500, /*unknownSeq=*/false);
  ASSERT_GE(rreps.size(), 1u);
  EXPECT_EQ(rreps[0].destSeq, 700u);
  EXPECT_TRUE(aodv::seqNewer(rreps[0].destSeq, 500));
}

TEST(BlackHoleTest, RepliesToProbesViolatingAodv) {
  // The detection premise: RREP₂'s sequence number exceeds RREQ₂'s.
  AttackRig rig{AttackRole::kSingle};
  const auto rrep1 = rig.probe(0, true, 1);
  ASSERT_EQ(rrep1.size(), 1u);
  const auto rrep2 = rig.probe(rrep1[0].destSeq + 1, false, 2, true);
  ASSERT_EQ(rrep2.size(), 1u);
  EXPECT_TRUE(aodv::seqNewer(rrep2[0].destSeq, rrep1[0].destSeq + 1));
}

TEST(BlackHoleTest, SingleAttackerRefusesNextHopDisclosure) {
  AttackRig rig{AttackRole::kSingle};
  const auto rreps = rig.probe(10, false, 1, /*inquire=*/true);
  ASSERT_EQ(rreps.size(), 1u);
  EXPECT_EQ(rreps[0].claimedNextHop, common::kNullAddress);
}

TEST(BlackHoleTest, PrimaryNamesTeammateUnderInquiry) {
  BlackHoleConfig config;
  config.teammate = common::Address{67};
  AttackRig rig{AttackRole::kPrimary, config};
  const auto rreps = rig.probe(10, false, 1, /*inquire=*/true);
  ASSERT_EQ(rreps.size(), 1u);
  EXPECT_EQ(rreps[0].claimedNextHop, common::Address{67});
}

TEST(BlackHoleTest, NoTeammateDisclosureWithoutInquiry) {
  BlackHoleConfig config;
  config.teammate = common::Address{67};
  AttackRig rig{AttackRole::kPrimary, config};
  const auto rreps = rig.probe(10, false, 1, /*inquire=*/false);
  ASSERT_EQ(rreps.size(), 1u);
  EXPECT_EQ(rreps[0].claimedNextHop, common::kNullAddress);
}

TEST(BlackHoleTest, AccompliceIgnoresBroadcastsButAnswersProbes) {
  AttackRig rig{AttackRole::kAccomplice};
  EXPECT_TRUE(rig.flood(0, true, 1).empty());
  EXPECT_EQ(rig.probe(0, true, 2).size(), 1u);
}

TEST(BlackHoleTest, DropsDataInTransit) {
  AttackRig rig{AttackRole::kSingle};
  // Give the attacker a (forged) routing state, then hand it a data packet
  // addressed elsewhere: it must vanish.
  auto data = std::make_shared<aodv::DataPacket>();
  data->origin = common::Address{10};
  data->destination = common::Address{999};
  rig.victim_->sendTo(common::Address{66}, data);
  rig.run();
  EXPECT_EQ(rig.agent_->stats().dataDropped, 1u);
  EXPECT_EQ(rig.agent_->stats().dataForwarded, 0u);
}

TEST(BlackHoleTest, ForgesHelloReplyWhenConfigured) {
  BlackHoleConfig config;
  config.sendFakeHelloReply = true;
  AttackRig rig{AttackRole::kSingle, config};

  // The attacker needs a reverse route to the origin — it learns one from
  // the discovery flood, as in the real attack sequence.
  (void)rig.flood(0, true, 1);

  auto hello = std::make_shared<core::AuthHello>();
  hello->helloId = 42;
  hello->origin = common::Address{10};
  hello->destination = common::Address{999};
  auto data = std::make_shared<aodv::DataPacket>();
  data->origin = common::Address{10};
  data->destination = common::Address{999};
  data->inner = hello;
  rig.victim_->sendTo(common::Address{66}, data);
  rig.run();

  EXPECT_EQ(rig.agent_->attackStats().helloRepliesForged, 1u);
  // The forged reply came back to the victim claiming the attacker itself
  // is the destination.
  bool sawReply = false;
  for (const net::Frame& frame : rig.received_) {
    const auto* packet = net::payloadAs<aodv::DataPacket>(frame.payload);
    if (packet == nullptr || packet->inner == nullptr) continue;
    if (const auto* reply =
            dynamic_cast<const core::AuthHello*>(packet->inner.get())) {
      EXPECT_TRUE(reply->isReply);
      EXPECT_EQ(reply->helloId, 42u);
      EXPECT_EQ(reply->responder, common::Address{66});
      sawReply = true;
    }
  }
  EXPECT_TRUE(sawReply);
}

TEST(BlackHoleTest, WithoutFakeHelloConfigHelloIsSwallowed) {
  AttackRig rig{AttackRole::kSingle};
  (void)rig.flood(0, true, 1);
  auto hello = std::make_shared<core::AuthHello>();
  hello->origin = common::Address{10};
  hello->destination = common::Address{999};
  auto data = std::make_shared<aodv::DataPacket>();
  data->origin = common::Address{10};
  data->destination = common::Address{999};
  data->inner = hello;
  rig.victim_->sendTo(common::Address{66}, data);
  rig.run();
  EXPECT_EQ(rig.agent_->attackStats().helloRepliesForged, 0u);
  EXPECT_EQ(rig.agent_->stats().dataDropped, 1u);
}

TEST(BlackHoleTest, ActLegitStaysSilentUnderProbe) {
  BlackHoleConfig config;
  config.actLegitProbability = 1.0;
  AttackRig rig{AttackRole::kSingle, config};
  EXPECT_TRUE(rig.probe(0, true, 1).empty());
  EXPECT_GE(rig.agent_->attackStats().probesDodged, 1u);
}

TEST(BlackHoleTest, ActLegitStillAnswersFirstDiscovery) {
  // Evasion triggers on probes and *repeated* requests — the first broadcast
  // discovery is still answered (the attack itself).
  BlackHoleConfig config;
  config.actLegitProbability = 1.0;
  AttackRig rig{AttackRole::kSingle, config};
  EXPECT_EQ(rig.flood(0, true, 1).size(), 1u);
  // A repeated discovery (same origin/destination) gets dodged.
  EXPECT_TRUE(rig.flood(0, true, 2).empty());
}

TEST(BlackHoleTest, RenewalCallbackFiresOnProbe) {
  BlackHoleConfig config;
  config.renewProbability = 1.0;
  AttackRig rig{AttackRole::kSingle, config};
  int renewals = 0;
  rig.agent_->setRenewCallback([&] {
    ++renewals;
    return true;
  });
  EXPECT_TRUE(rig.probe(0, true, 1).empty());
  EXPECT_EQ(renewals, 1);
  EXPECT_EQ(rig.agent_->attackStats().renewals, 1u);
}

TEST(BlackHoleTest, FailedRenewalFallsThroughToReply) {
  // Once the TA has paused renewal, the evasion channel is closed and the
  // attacker is exposed again.
  BlackHoleConfig config;
  config.renewProbability = 1.0;
  AttackRig rig{AttackRole::kSingle, config};
  rig.agent_->setRenewCallback([] { return false; });  // paused at the TA
  EXPECT_EQ(rig.probe(0, true, 1).size(), 1u);
}

TEST(BlackHoleTest, FleeBeforeReplyVanishesSilently) {
  BlackHoleConfig config;
  config.fleeMode = FleeMode::kBeforeReply;
  AttackRig rig{AttackRole::kSingle, config};
  int fled = 0;
  rig.agent_->setFleeCallback([&] { ++fled; });
  EXPECT_TRUE(rig.probe(0, true, 1).empty());
  EXPECT_EQ(fled, 1);
  // Further probes stay unanswered, but the flee fires only once.
  EXPECT_TRUE(rig.probe(0, true, 2).empty());
  EXPECT_EQ(fled, 1);
}

TEST(BlackHoleTest, FleeAfterFirstReplyAnswersThenMoves) {
  BlackHoleConfig config;
  config.fleeMode = FleeMode::kAfterFirstReply;
  AttackRig rig{AttackRole::kSingle, config};
  int fled = 0;
  rig.agent_->setFleeCallback([&] { ++fled; });
  EXPECT_EQ(rig.probe(0, true, 1).size(), 1u);
  EXPECT_EQ(fled, 1);
  // It keeps answering from the new location (the next CH's probes).
  EXPECT_EQ(rig.probe(201, false, 2).size(), 1u);
  EXPECT_EQ(fled, 1);
}

TEST(BlackHoleTest, MultiCopyRepliesAreBounded) {
  BlackHoleConfig config;
  config.maxRepliesPerRreq = 2;
  AttackRig rig{AttackRole::kSingle, config};
  // Replay the same flood copy five times (five neighbours relaying).
  auto rreq = std::make_shared<aodv::RouteRequest>();
  rreq->rreqId = common::RreqId{1};
  rreq->origin = common::Address{10};
  rreq->originSeq = 1;
  rreq->destination = common::Address{999};
  for (int i = 0; i < 5; ++i) rig.victim_->broadcast(rreq);
  rig.run();
  EXPECT_EQ(rig.collectRreps().size(), 2u);
  EXPECT_EQ(rig.agent_->attackStats().rrepsForged, 2u);
}

TEST(BlackHoleTest, IgnoresOwnFloodEcho) {
  AttackRig rig{AttackRole::kSingle};
  auto rreq = std::make_shared<aodv::RouteRequest>();
  rreq->rreqId = common::RreqId{1};
  rreq->origin = common::Address{66};  // attacker's own origin
  rreq->destination = common::Address{999};
  rig.victim_->broadcast(rreq);
  rig.run();
  EXPECT_TRUE(rig.collectRreps().empty());
}

TEST(BlackHoleTest, InstallsReverseRouteToVictim) {
  AttackRig rig{AttackRole::kSingle};
  (void)rig.flood(0, true, 1);
  const auto route = rig.agent_->routingTable().activeRoute(
      common::Address{10}, rig.simulator_.now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nextHop, common::Address{10});
}

TEST(BlackHoleTest, FastConfigRepliesQuickerThanHonestProcessing) {
  const aodv::AodvConfig fast = BlackHoleAgent::fastAodvConfig();
  const aodv::AodvConfig honest{};
  EXPECT_LT(fast.processingDelay, honest.processingDelay);
}

}  // namespace
}  // namespace blackdp::attack
