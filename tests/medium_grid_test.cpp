// Pins the spatial-grid medium's determinism contract: the grid is a pure
// lookup accelerator. Whichever path finds the candidates (cell neighborhood
// or full linear scan), the in-range receivers are visited in strictly
// ascending node-id order and the RNG stream is consumed for exactly the
// same receiver sequence — so grid and linear runs replay byte-identically,
// including a full seeded scenario's trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/medium.hpp"
#include "obs/trace.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/rng.hpp"

namespace blackdp {
namespace {

using net::Frame;
using net::MediumConfig;
using net::Radio;
using net::WirelessMedium;

class Ping final : public net::Payload {
 public:
  [[nodiscard]] std::string_view typeName() const override { return "ping"; }
};

/// Radio that appends its node id to a shared delivery log on every frame,
/// capturing the exact receiver visit order.
class LoggingRadio final : public Radio {
 public:
  LoggingRadio(std::uint32_t id, std::vector<std::uint32_t>& log)
      : id_{id}, log_{&log} {}

  [[nodiscard]] mobility::Position radioPosition() const override {
    return where;
  }
  void onFrame(const Frame&) override { log_->push_back(id_); }
  void onSendFailed(const Frame&) override { ++sendFailures; }

  mobility::Position where{};
  std::uint32_t sendFailures{0};

 private:
  std::uint32_t id_;
  std::vector<std::uint32_t>* log_;
};

/// One randomized broadcast workload: `fleet` radios scattered over a square,
/// several senders broadcasting, some mid-run drift and one teleport. Returns
/// the delivery log and final stats.
struct WorkloadResult {
  std::vector<std::uint32_t> deliveries;
  net::MediumStats stats;
};

WorkloadResult runWorkload(bool spatialGrid, std::uint32_t fleet,
                           double lossProbability) {
  MediumConfig config;
  config.transmissionRangeM = 500.0;
  config.spatialGrid = spatialGrid;
  config.lossProbability = lossProbability;

  sim::Simulator simulator;
  WirelessMedium medium{simulator, sim::Rng{99}, config};

  WorkloadResult result;
  std::vector<LoggingRadio> radios;
  radios.reserve(fleet);
  sim::Rng placement{2024};  // same scatter for both paths
  for (std::uint32_t i = 0; i < fleet; ++i) {
    radios.emplace_back(i + 1, result.deliveries);
    radios.back().where =
        mobility::Position{placement.uniformReal(0.0, 4'000.0),
                           placement.uniformReal(0.0, 4'000.0)};
    medium.attach(common::NodeId{i + 1}, radios.back());
  }

  const auto broadcastFrom = [&](std::uint32_t origin) {
    medium.send(common::NodeId{origin},
                Frame{common::Address{origin}, common::kBroadcastAddress,
                      net::makePayload<Ping>()});
    simulator.run();
  };

  for (std::uint32_t origin = 1; origin <= fleet; origin += 7) {
    broadcastFrom(origin);
  }

  // Bounded drift (under maxNodeSpeedMps × elapsed is moot here because the
  // positions are re-read per send; nudge everyone within one cell).
  for (auto& radio : radios) radio.where.x += 40.0;
  broadcastFrom(1);
  broadcastFrom(fleet / 2 + 1);

  // Teleport: discontinuous jump across many cells must be safe after
  // invalidateGrid() (the BasicNode::setMotion hook in the full stack).
  radios[0].where = mobility::Position{3'900.0, 3'900.0};
  medium.invalidateGrid();
  broadcastFrom(1);
  broadcastFrom(fleet);

  result.stats = medium.stats();
  return result;
}

TEST(MediumGridTest, GridAndLinearScanDeliverIdentically) {
  for (const double loss : {0.0, 0.3}) {
    const WorkloadResult grid = runWorkload(true, 200, loss);
    const WorkloadResult linear = runWorkload(false, 200, loss);

    // Same receivers, same visit order, same RNG stream (loss draws line up).
    EXPECT_EQ(grid.deliveries, linear.deliveries) << "loss=" << loss;
    EXPECT_EQ(grid.stats.framesSent, linear.stats.framesSent);
    EXPECT_EQ(grid.stats.framesDelivered, linear.stats.framesDelivered);
    EXPECT_EQ(grid.stats.framesLost, linear.stats.framesLost);
    EXPECT_EQ(grid.stats.bytesSent, linear.stats.bytesSent);
    EXPECT_GT(grid.deliveries.size(), 0u);
    EXPECT_GT(grid.stats.gridRebuilds, 0u);
    EXPECT_EQ(linear.stats.gridRebuilds, 0u);
  }
}

TEST(MediumGridTest, DeliveryOrderIsAscendingNodeId) {
  // Within one broadcast every delivery carries the same timestamp, so the
  // per-send segments of the log must each be ascending.
  MediumConfig config;
  config.transmissionRangeM = 500.0;
  config.maxJitter = sim::Duration{};  // keep delivery order = visit order
  sim::Simulator simulator;
  WirelessMedium medium{simulator, sim::Rng{5}, config};

  std::vector<std::uint32_t> log;
  std::vector<LoggingRadio> radios;
  radios.reserve(64);
  sim::Rng placement{77};
  for (std::uint32_t i = 0; i < 64; ++i) {
    radios.emplace_back(i + 1, log);
    radios.back().where = mobility::Position{
        placement.uniformReal(0.0, 900.0), placement.uniformReal(0.0, 900.0)};
    medium.attach(common::NodeId{i + 1}, radios.back());
  }
  for (const std::uint32_t origin : {1u, 17u, 40u, 64u}) {
    const std::size_t begin = log.size();
    medium.send(common::NodeId{origin},
                Frame{common::Address{origin}, common::kBroadcastAddress,
                      net::makePayload<Ping>()});
    simulator.run();
    ASSERT_GT(log.size(), begin);
    for (std::size_t i = begin + 1; i < log.size(); ++i) {
      EXPECT_LT(log[i - 1], log[i]) << "broadcast from " << origin;
    }
  }
}

TEST(MediumGridTest, SeedScenarioReplaysByteIdenticallyGridVsLinear) {
  // The full protocol stack on the paper's highway world: the recorded trace
  // (every tx/rx/drop/verdict event, timestamps included) must be identical
  // with the grid on and off.
  const auto run = [](bool spatialGrid) {
    obs::MemoryRecorder recorder;
    obs::ScopedTraceRecorder scoped{&recorder};
    scenario::ScenarioConfig config;
    config.seed = 20260805;
    config.attack = scenario::AttackType::kCooperative;
    config.attackerCluster = common::ClusterId{2};
    config.medium.spatialGrid = spatialGrid;
    scenario::HighwayScenario world(config);
    (void)world.runVerification();
    (void)world.sendDataBurst(50);
    return std::pair{recorder.events(), world.medium().stats()};
  };

  const auto [gridTrace, gridStats] = run(true);
  const auto [linearTrace, linearStats] = run(false);

  ASSERT_FALSE(gridTrace.empty());
  EXPECT_EQ(gridTrace, linearTrace);
  EXPECT_EQ(gridStats.framesSent, linearStats.framesSent);
  EXPECT_EQ(gridStats.framesDelivered, linearStats.framesDelivered);
  EXPECT_EQ(gridStats.framesLost, linearStats.framesLost);
  EXPECT_EQ(gridStats.bytesSent, linearStats.bytesSent);
  EXPECT_GT(gridStats.gridRebuilds, 0u);
}

TEST(MediumGridTest, DetachUnbindsAddressesAndReusedAddressRoutesToNewOwner) {
  MediumConfig config;
  config.maxJitter = sim::Duration{};
  sim::Simulator simulator;
  WirelessMedium medium{simulator, sim::Rng{3}, config};

  std::vector<std::uint32_t> log;
  LoggingRadio sender{1, log};
  LoggingRadio old{2, log};
  LoggingRadio fresh{3, log};
  sender.where = {0.0, 0.0};
  old.where = {100.0, 0.0};
  fresh.where = {200.0, 0.0};
  medium.attach(common::NodeId{1}, sender);
  medium.attach(common::NodeId{2}, old);
  medium.bindAddress(common::Address{55}, common::NodeId{2});

  // Owner present: the unicast ACKs (no send failure).
  medium.send(common::NodeId{1}, Frame{common::Address{1}, common::Address{55},
                                       net::makePayload<Ping>()});
  simulator.run();
  EXPECT_EQ(sender.sendFailures, 0u);

  // Detach must drop the stale address binding: with no owner, the MAC ACK
  // model reports the transmission failed.
  medium.detach(common::NodeId{2});
  medium.send(common::NodeId{1}, Frame{common::Address{1}, common::Address{55},
                                       net::makePayload<Ping>()});
  simulator.run();
  EXPECT_EQ(sender.sendFailures, 1u);

  // A re-used address routes to its new owner, never to the ghost.
  medium.attach(common::NodeId{3}, fresh);
  medium.bindAddress(common::Address{55}, common::NodeId{3});
  medium.send(common::NodeId{1}, Frame{common::Address{1}, common::Address{55},
                                       net::makePayload<Ping>()});
  simulator.run();
  EXPECT_EQ(sender.sendFailures, 1u);  // unchanged: the send succeeded
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back(), 3u);
}

TEST(MediumGridTest, InRangeAgreesWithDeliveryPredicate) {
  MediumConfig config;
  config.transmissionRangeM = 300.0;
  sim::Simulator simulator;
  WirelessMedium medium{simulator, sim::Rng{4}, config};
  std::vector<std::uint32_t> log;
  LoggingRadio a{1, log};
  LoggingRadio b{2, log};
  a.where = {0.0, 0.0};
  b.where = {300.0, 0.0};  // exactly at range: inclusive
  medium.attach(common::NodeId{1}, a);
  medium.attach(common::NodeId{2}, b);
  EXPECT_TRUE(medium.inRange(common::NodeId{1}, common::NodeId{2}));
  b.where = {300.1, 0.0};
  EXPECT_FALSE(medium.inRange(common::NodeId{1}, common::NodeId{2}));
}

}  // namespace
}  // namespace blackdp
