#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "mobility/highway.hpp"
#include "mobility/motion.hpp"

namespace blackdp::mobility {
namespace {

// ----------------------------------------------------------------- highway

class HighwayTest : public ::testing::Test {
 protected:
  Highway highway_{10'000.0, 200.0, 1'000.0};  // Table I
};

TEST_F(HighwayTest, ClusterCountIsLengthOverRange) {
  EXPECT_EQ(highway_.clusterCount(), 10u);
}

TEST_F(HighwayTest, UnevenLengthRoundsUp) {
  const Highway h{10'500.0, 200.0, 1'000.0};
  EXPECT_EQ(h.clusterCount(), 11u);
}

TEST_F(HighwayTest, ClusterAtMapsPositions) {
  EXPECT_EQ(highway_.clusterAt(0.0), common::ClusterId{1});
  EXPECT_EQ(highway_.clusterAt(999.99), common::ClusterId{1});
  EXPECT_EQ(highway_.clusterAt(1000.0), common::ClusterId{2});
  EXPECT_EQ(highway_.clusterAt(9'999.0), common::ClusterId{10});
}

TEST_F(HighwayTest, OffHighwayIsNoCluster) {
  EXPECT_FALSE(highway_.clusterAt(-0.001).has_value());
  EXPECT_FALSE(highway_.clusterAt(10'000.0).has_value());
  EXPECT_FALSE(highway_.clusterAt(20'000.0).has_value());
}

TEST_F(HighwayTest, ClusterCentersAreMidSegment) {
  const Position c1 = highway_.clusterCenter(common::ClusterId{1});
  EXPECT_DOUBLE_EQ(c1.x, 500.0);
  EXPECT_DOUBLE_EQ(c1.y, 100.0);
  const Position c10 = highway_.clusterCenter(common::ClusterId{10});
  EXPECT_DOUBLE_EQ(c10.x, 9'500.0);
}

TEST_F(HighwayTest, ClusterBounds) {
  EXPECT_DOUBLE_EQ(highway_.clusterBegin(common::ClusterId{3}), 2'000.0);
  EXPECT_DOUBLE_EQ(highway_.clusterEnd(common::ClusterId{3}), 3'000.0);
}

TEST_F(HighwayTest, LastClusterEndClampsToLength) {
  const Highway h{9'500.0, 200.0, 1'000.0};
  EXPECT_DOUBLE_EQ(h.clusterEnd(common::ClusterId{10}), 9'500.0);
}

TEST_F(HighwayTest, OutOfRangeClusterIdThrows) {
  EXPECT_THROW((void)highway_.clusterBegin(common::ClusterId{0}),
               common::AssertionError);
  EXPECT_THROW((void)highway_.clusterBegin(common::ClusterId{11}),
               common::AssertionError);
}

TEST_F(HighwayTest, ContainsChecksBothAxes) {
  EXPECT_TRUE(highway_.contains({5'000.0, 100.0}));
  EXPECT_TRUE(highway_.contains({0.0, 0.0}));
  EXPECT_FALSE(highway_.contains({-1.0, 100.0}));
  EXPECT_FALSE(highway_.contains({5'000.0, 201.0}));
  EXPECT_FALSE(highway_.contains({10'000.0, 100.0}));
}

TEST_F(HighwayTest, InvalidDimensionsThrow) {
  EXPECT_THROW((Highway{0.0, 200.0, 1'000.0}), std::invalid_argument);
  EXPECT_THROW((Highway{10'000.0, -1.0, 1'000.0}), std::invalid_argument);
  EXPECT_THROW((Highway{10'000.0, 200.0, 0.0}), std::invalid_argument);
}

TEST(DistanceTest, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

// Property: every on-highway x maps to a cluster whose bounds contain it.
class ClusterMappingProperty : public ::testing::TestWithParam<double> {};

TEST_P(ClusterMappingProperty, ClusterBoundsContainPosition) {
  const Highway highway{10'000.0, 200.0, 1'000.0};
  const double x = GetParam();
  const auto cluster = highway.clusterAt(x);
  ASSERT_TRUE(cluster.has_value());
  EXPECT_GE(x, highway.clusterBegin(*cluster));
  EXPECT_LT(x, highway.clusterEnd(*cluster));
}

INSTANTIATE_TEST_SUITE_P(Positions, ClusterMappingProperty,
                         ::testing::Values(0.0, 1.0, 499.5, 999.999, 1000.0,
                                           2500.0, 5000.0, 7999.0, 9000.0,
                                           9999.999));

// ------------------------------------------------------------------ motion

TEST(MotionTest, StationaryStaysPut) {
  const LinearMotion m = LinearMotion::stationary({100.0, 50.0});
  EXPECT_EQ(m.positionAt(sim::TimePoint::fromUs(10'000'000)).x, 100.0);
  EXPECT_EQ(m.speedMps(), 0.0);
}

TEST(MotionTest, EastboundAdvances) {
  const LinearMotion m{{0.0, 10.0}, 25.0, Direction::kEastbound,
                       sim::TimePoint::fromUs(0)};
  const Position p = m.positionAt(sim::TimePoint::fromUs(2'000'000));
  EXPECT_DOUBLE_EQ(p.x, 50.0);
  EXPECT_DOUBLE_EQ(p.y, 10.0);
}

TEST(MotionTest, WestboundRecedes) {
  const LinearMotion m{{100.0, 10.0}, 10.0, Direction::kWestbound,
                       sim::TimePoint::fromUs(0)};
  EXPECT_DOUBLE_EQ(m.positionAt(sim::TimePoint::fromUs(3'000'000)).x, 70.0);
}

TEST(MotionTest, AnchoredAtStartTime) {
  const LinearMotion m{{0.0, 0.0}, 10.0, Direction::kEastbound,
                       sim::TimePoint::fromUs(5'000'000)};
  EXPECT_DOUBLE_EQ(m.positionAt(sim::TimePoint::fromUs(5'000'000)).x, 0.0);
  EXPECT_DOUBLE_EQ(m.positionAt(sim::TimePoint::fromUs(6'000'000)).x, 10.0);
}

TEST(MotionTest, WhenAtXForward) {
  const LinearMotion m{{0.0, 0.0}, 20.0, Direction::kEastbound,
                       sim::TimePoint::fromUs(0)};
  const auto when = m.whenAtX(100.0);
  ASSERT_TRUE(when.has_value());
  EXPECT_EQ(when->us(), 5'000'000);
}

TEST(MotionTest, WhenAtXBehindIsNever) {
  const LinearMotion m{{50.0, 0.0}, 20.0, Direction::kEastbound,
                       sim::TimePoint::fromUs(0)};
  EXPECT_FALSE(m.whenAtX(10.0).has_value());
}

TEST(MotionTest, WhenAtXWestbound) {
  const LinearMotion m{{100.0, 0.0}, 10.0, Direction::kWestbound,
                       sim::TimePoint::fromUs(0)};
  const auto when = m.whenAtX(60.0);
  ASSERT_TRUE(when.has_value());
  EXPECT_EQ(when->us(), 4'000'000);
  EXPECT_FALSE(m.whenAtX(150.0).has_value());
}

TEST(MotionTest, WhenAtXStationary) {
  const LinearMotion m = LinearMotion::stationary({10.0, 0.0});
  EXPECT_TRUE(m.whenAtX(10.0).has_value());
  EXPECT_FALSE(m.whenAtX(11.0).has_value());
}

TEST(MotionTest, KmhConversion) {
  EXPECT_DOUBLE_EQ(kmhToMps(90.0), 25.0);
  EXPECT_DOUBLE_EQ(kmhToMps(36.0), 10.0);
}

// Property: positionAt(whenAtX(x)).x == x (up to µs rounding).
class MotionInverseProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MotionInverseProperty, WhenAtXIsInverseOfPositionAt) {
  const auto [speed, target] = GetParam();
  const LinearMotion m{{0.0, 0.0}, speed, Direction::kEastbound,
                       sim::TimePoint::fromUs(0)};
  const auto when = m.whenAtX(target);
  ASSERT_TRUE(when.has_value());
  EXPECT_NEAR(m.positionAt(*when).x, target, speed * 1e-6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SpeedAndTarget, MotionInverseProperty,
    ::testing::Combine(::testing::Values(13.9, 20.0, 25.0),  // 50-90 km/h
                       ::testing::Values(1.0, 500.0, 999.0, 10'000.0)));

}  // namespace
}  // namespace blackdp::mobility
