// Pins the sharding contracts: ShardPlan geometry, the canonical envelope
// merge order, detector session migration (extract/adopt, including the
// late-handoff merge), and — the headline — partition invariance of the
// megacity corridor: shards=1 and shards=N produce byte-identical metrics
// JSON and canonical logs. The same identity gates CI via the megacity
// smoke stage.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/lite_detector.hpp"
#include "scenario/corridor_world.hpp"
#include "shard/envelope.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/parallel.hpp"

namespace blackdp {
namespace {

TEST(ShardPlanTest, ContiguousSplitCoversEverySegmentOnce) {
  const shard::ShardPlan plan = shard::ShardPlan::contiguous(10, 4);
  EXPECT_EQ(plan.segments(), 10u);
  EXPECT_EQ(plan.shards(), 4u);
  // 10 = 3 + 3 + 2 + 2: the first (segments % shards) regions get the
  // extra segment.
  EXPECT_EQ(plan.segmentCount(0), 3u);
  EXPECT_EQ(plan.segmentCount(1), 3u);
  EXPECT_EQ(plan.segmentCount(2), 2u);
  EXPECT_EQ(plan.segmentCount(3), 2u);
  std::uint32_t covered = 0;
  for (std::uint32_t s = 0; s < plan.shards(); ++s) {
    EXPECT_EQ(plan.firstSegment(s), covered);
    for (std::uint32_t i = 0; i < plan.segmentCount(s); ++i) {
      EXPECT_EQ(plan.shardOf(covered + i), s);
    }
    covered += plan.segmentCount(s);
  }
  EXPECT_EQ(covered, plan.segments());
}

TEST(ShardPlanTest, SinglePartitionOwnsEverything) {
  const shard::ShardPlan plan = shard::ShardPlan::contiguous(7, 1);
  EXPECT_EQ(plan.segmentCount(0), 7u);
  for (std::uint32_t s = 0; s < 7; ++s) EXPECT_EQ(plan.shardOf(s), 0u);
}

TEST(EnvelopeTest, CanonicalOrderIsSourceSegmentThenSeq) {
  const shard::Envelope a{1, 2, 0, 0, {}};
  const shard::Envelope b{1, 2, 1, 0, {}};
  const shard::Envelope c{2, 1, 0, 0, {}};
  EXPECT_TRUE(shard::canonicalLess(a, b));
  EXPECT_TRUE(shard::canonicalLess(b, c));
  EXPECT_FALSE(shard::canonicalLess(c, a));
}

/// Toy world: records the inbox it observes each epoch and emits a scripted
/// outbox, so the test can watch the barrier merge + route exactly.
class RecordingWorld final : public shard::ShardWorld {
 public:
  RecordingWorld(std::uint32_t firstSegment, std::uint32_t segmentCount)
      : firstSegment_{firstSegment}, segmentCount_{segmentCount} {}

  void runEpoch(std::uint32_t epoch, std::span<const shard::Envelope> inbox,
                std::vector<shard::Envelope>& outbox) override {
    inboxes_.emplace_back(inbox.begin(), inbox.end());
    if (epoch == 0) {
      // Emit toward the neighbouring region, out of seq order on purpose —
      // emission order per source segment must still be seq-ascending, so
      // seq follows emission; srcSegment interleaving is what the canonical
      // sort has to untangle.
      const std::uint32_t last = firstSegment_ + segmentCount_ - 1;
      const std::uint32_t dst = last + 1 < 4 ? last + 1 : last - 1;
      outbox.push_back({last, dst, 0, 7, {static_cast<std::uint8_t>(last)}});
      outbox.push_back({last, dst, 1, 7, {}});
    }
  }

  [[nodiscard]] const std::vector<std::vector<shard::Envelope>>& inboxes()
      const {
    return inboxes_;
  }

 private:
  std::uint32_t firstSegment_;
  std::uint32_t segmentCount_;
  std::vector<std::vector<shard::Envelope>> inboxes_;
};

TEST(ShardedSimulationTest, MergesAndRoutesEnvelopesInCanonicalOrder) {
  const sim::ParallelRunner runner{2};
  shard::ShardPlan plan = shard::ShardPlan::contiguous(4, 2);
  RecordingWorld low{0, 2};   // segments 0-1, emits 1 -> 2
  RecordingWorld high{2, 2};  // segments 2-3, emits 3 -> 2
  shard::ShardedSimulation sharded{plan, {&low, &high},
                                   runner.threadPool()};
  sharded.runEpochs(2);

  EXPECT_EQ(sharded.stats().epochsRun, 2u);
  EXPECT_EQ(sharded.stats().envelopesExchanged, 4u);
  // Epoch 0 inboxes are empty; epoch 1: everything targets segment 2
  // (high shard), ordered src=1 seq=0, src=1 seq=1, src=3 seq=0, src=3
  // seq=1.
  ASSERT_EQ(low.inboxes().size(), 2u);
  ASSERT_EQ(high.inboxes().size(), 2u);
  EXPECT_TRUE(low.inboxes()[0].empty());
  EXPECT_TRUE(low.inboxes()[1].empty());
  EXPECT_TRUE(high.inboxes()[0].empty());
  const auto& arrived = high.inboxes()[1];
  ASSERT_EQ(arrived.size(), 4u);
  EXPECT_EQ(arrived[0].srcSegment, 1u);
  EXPECT_EQ(arrived[0].seq, 0u);
  EXPECT_EQ(arrived[1].srcSegment, 1u);
  EXPECT_EQ(arrived[1].seq, 1u);
  EXPECT_EQ(arrived[2].srcSegment, 3u);
  EXPECT_EQ(arrived[2].seq, 0u);
  EXPECT_EQ(arrived[3].srcSegment, 3u);
  EXPECT_EQ(arrived[3].seq, 1u);
}

// ------------------------------------------------- detector session moves

TEST(LiteDetectorTest, ExtractAdoptRoundTripPreservesSessionState) {
  core::LiteDetector src{{}, {}};
  const common::Address suspect{0x1'0000'002au};
  src.report(suspect, common::Address{0x1'0000'0001u}, 1'234'567, 1);
  src.beginEpoch([](common::Address) { return true; });  // one probe round
  src.onProbeReply(suspect);                             // one violation

  const core::LiteSessionState moved = src.extract(suspect);
  EXPECT_EQ(src.activeSessions(), 0u);
  EXPECT_EQ(moved.firstReportAtUs, 1'234'567);
  EXPECT_EQ(moved.violations, 1u);
  EXPECT_EQ(moved.probesSent, 1u);
  EXPECT_EQ(moved.travelDirection, 1u);

  core::LiteDetector dst{{}, {}};
  dst.adopt(moved);
  EXPECT_EQ(dst.activeSessions(), 1u);
  const core::LiteSessionState* s = dst.find(suspect);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, moved);
}

TEST(LiteDetectorTest, SerializeDeserializeRoundTrips) {
  core::LiteSessionState s;
  s.suspect = common::Address{0x1'0000'0123u};
  s.firstReporter = common::Address{0x1'0000'0456u};
  s.firstReportAtUs = 9'876'543'210;
  s.violations = 1;
  s.probesSent = 3;
  s.forwards = 2;
  s.travelDirection = 1;
  common::ByteWriter w;
  s.serialize(w);
  common::ByteReader r{w.bytes()};
  EXPECT_EQ(core::LiteSessionState::deserialize(r), s);
}

TEST(LiteDetectorTest, AdoptMergesWithAnExistingSession) {
  // The handoff envelope trails a migrating suspect by one epoch, so the
  // destination may have re-opened its own session from local reports.
  core::LiteDetector dst{{}, {}};
  const common::Address suspect{0x1'0000'002au};
  dst.report(suspect, common::Address{0x1'0000'0002u}, 5'000'000, 0);
  dst.beginEpoch([](common::Address) { return true; });
  dst.onProbeReply(suspect);  // local evidence: 1 violation

  core::LiteSessionState incoming;
  incoming.suspect = suspect;
  incoming.firstReporter = common::Address{0x1'0000'0001u};
  incoming.firstReportAtUs = 1'000'000;  // earlier than the local report
  incoming.violations = 1;
  incoming.probesSent = 2;
  incoming.forwards = 1;

  std::uint32_t confirmed = 0;
  std::int64_t confirmedClock = 0;
  core::LiteDetector::Hooks hooks;
  hooks.onVerdict = [&](const core::LiteSessionState& state,
                        core::LiteVerdict verdict) {
    if (verdict == core::LiteVerdict::kConfirmed) {
      ++confirmed;
      confirmedClock = state.firstReportAtUs;
    }
  };
  core::LiteDetector merger{{}, std::move(hooks)};
  merger.report(suspect, common::Address{0x1'0000'0002u}, 5'000'000, 0);
  merger.beginEpoch([](common::Address) { return true; });
  merger.onProbeReply(suspect);
  // 1 local + 1 migrated violation reaches probesToConfirm = 2: the merge
  // itself concludes, and the detection clock keeps the EARLIER report.
  merger.adopt(incoming);
  EXPECT_EQ(confirmed, 1u);
  EXPECT_EQ(confirmedClock, 1'000'000);
  EXPECT_EQ(merger.activeSessions(), 0u);
  EXPECT_EQ(merger.stats().adopted, 1u);
}

// ----------------------------------------------------- partition invariance

scenario::CorridorConfig tinyCorridor() {
  scenario::CorridorConfig config;
  config.seed = 7;
  config.segments = 4;
  config.vehicles = 240;
  config.attackerPermille = 100;  // 10% black holes: detections in 4 epochs
  config.departPermille = 100;
  return config;
}

TEST(CorridorWorldTest, ShardCountIsUnobservable) {
  const sim::ParallelRunner runner{4};
  const scenario::CorridorConfig config = tinyCorridor();

  scenario::CorridorWorld mono{config, 1, runner.threadPool()};
  mono.run(4);
  scenario::CorridorWorld quad{config, 4, runner.threadPool()};
  quad.run(4);

  // Byte-identical: the partition must be unobservable on both
  // deterministic surfaces.
  EXPECT_EQ(mono.metricsJson(), quad.metricsJson());
  EXPECT_EQ(mono.canonicalLog(), quad.canonicalLog());
  EXPECT_EQ(mono.framesDelivered(), quad.framesDelivered());

  // The run must actually exercise the machinery it claims to pin.
  const std::string log = mono.canonicalLog();
  EXPECT_NE(log.find(" join"), std::string::npos);
  EXPECT_NE(log.find(" migrate-out"), std::string::npos);
  EXPECT_NE(log.find(" migrate-in"), std::string::npos);
  EXPECT_NE(log.find(" report"), std::string::npos);
  EXPECT_NE(log.find(" probe"), std::string::npos);
  EXPECT_NE(log.find(" verdict"), std::string::npos);
  EXPECT_GT(quad.shardStats().envelopesExchanged, 0u);
  EXPECT_EQ(mono.shardStats().envelopesExchanged,
            quad.shardStats().envelopesExchanged);
}

TEST(CorridorWorldTest, OddPartitionMatchesToo) {
  // 4 segments across 3 shards: uneven regions (2 + 1 + 1) must not leak
  // into the deterministic surfaces either.
  const sim::ParallelRunner runner{3};
  const scenario::CorridorConfig config = tinyCorridor();
  scenario::CorridorWorld mono{config, 1, runner.threadPool()};
  mono.run(3);
  scenario::CorridorWorld tri{config, 3, runner.threadPool()};
  tri.run(3);
  EXPECT_EQ(mono.metricsJson(), tri.metricsJson());
  EXPECT_EQ(mono.canonicalLog(), tri.canonicalLog());
}

TEST(CorridorWorldTest, VehicleSpecsArePureFunctionsOfSeed) {
  const scenario::CorridorConfig config = tinyCorridor();
  for (std::uint32_t id = 0; id < 16; ++id) {
    const scenario::VehicleSpec a = scenario::vehicleSpec(config, id);
    const scenario::VehicleSpec b = scenario::vehicleSpec(config, id);
    EXPECT_EQ(a.speedMps, b.speedMps);
    EXPECT_EQ(a.eastbound, b.eastbound);
    EXPECT_EQ(a.entryX, b.entryX);
    EXPECT_EQ(a.entryEpoch, b.entryEpoch);
    EXPECT_EQ(a.departEpoch, b.departEpoch);
    EXPECT_EQ(a.attacker, b.attacker);
    // Paper speeds: uniform 50-90 km/h.
    EXPECT_GE(a.speedMps, 50.0 / 3.6);
    EXPECT_LE(a.speedMps, 90.0 / 3.6);
  }
}

}  // namespace
}  // namespace blackdp
