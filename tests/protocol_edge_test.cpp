// Edge and error paths across the protocol stack: verifier preconditions,
// attacker pseudonym renewal under detection, RERR relays, loop freedom,
// revocation lifecycle, evasion outcomes.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "scenario/experiments.hpp"
#include "scenario/highway_scenario.hpp"

namespace blackdp {
namespace {

using scenario::AttackType;
using scenario::HighwayScenario;
using scenario::ScenarioConfig;

ScenarioConfig config(std::uint64_t seed, AttackType attack,
                      std::uint32_t cluster = 2) {
  ScenarioConfig c;
  c.seed = seed;
  c.attack = attack;
  c.attackerCluster = common::ClusterId{cluster};
  c.evasion.firstEvasiveCluster = 99;
  return c;
}

TEST(VerifierEdgeTest, ConcurrentVerificationIsRejected) {
  HighwayScenario world(config(41, AttackType::kNone));
  world.runFor(sim::Duration::milliseconds(500));
  world.source().verifier->establishVerifiedRoute(
      world.destination().address(), [](const core::VerificationReport&) {});
  EXPECT_TRUE(world.source().verifier->busy());
  EXPECT_THROW(world.source().verifier->establishVerifiedRoute(
                   world.destination().address(),
                   [](const core::VerificationReport&) {}),
               common::AssertionError);
}

TEST(VerifierEdgeTest, BusyClearsAfterCompletion) {
  HighwayScenario world(config(42, AttackType::kNone));
  const auto report = world.runVerification();
  EXPECT_EQ(report.outcome, core::Outcome::kRouteVerified);
  EXPECT_FALSE(world.source().verifier->busy());
}

TEST(VerifierEdgeTest, UnreachableDestinationEndsNoRoute) {
  HighwayScenario world(config(43, AttackType::kNone));
  world.runFor(sim::Duration::milliseconds(500));
  bool done = false;
  core::VerificationReport report;
  world.source().verifier->establishVerifiedRoute(
      common::Address{123456789},  // nobody
      [&](const core::VerificationReport& r) {
        report = r;
        done = true;
      });
  ASSERT_TRUE(world.runUntil([&] { return done; }, sim::Duration::seconds(60)));
  EXPECT_EQ(report.outcome, core::Outcome::kNoRoute);
  EXPECT_FALSE(report.reported);
}

TEST(RenewalEvasionTest, RenewingAttackerEscapesButCannotAfterIsolation) {
  // Sticky renewal evasion: the attacker changes pseudonym whenever probed.
  ScenarioConfig c = config(44, AttackType::kSingle, 9);
  c.evasion.firstEvasiveCluster = 1;  // force the evasion draw range
  c.evasion.actLegitBase = 0.0;
  c.evasion.actLegitStep = 0.0;
  c.evasion.renewBase = 1.0;  // always the renewal behaviour
  c.evasion.renewStep = 0.0;
  HighwayScenario world(c);
  (void)world.runVerification();
  const scenario::DetectionSummary summary = world.detectionSummary();
  // Escaped (or, rarely, got caught before the renewal landed) — but never
  // a false positive, and every renewal is in the ground-truth ledger.
  EXPECT_FALSE(summary.falsePositive);
  if (!summary.confirmedOnAttacker) {
    EXPECT_GE(world.primaryAttacker()->attacker->attackStats().renewals, 1u);
  }
  // All pseudonyms the attacker ever held trace back to it.
  EXPECT_TRUE(world.isAttackerPseudonym(world.primaryAttacker()->address()));
}

TEST(ActLegitEvasionTest, SilentAttackerPreventsButEvades) {
  ScenarioConfig c = config(45, AttackType::kSingle, 9);
  c.evasion.firstEvasiveCluster = 1;
  c.evasion.actLegitBase = 1.0;  // always dodge repeat requests and probes
  c.evasion.actLegitStep = 0.0;
  c.evasion.renewBase = 0.0;
  HighwayScenario world(c);
  const auto report = world.runVerification();
  const scenario::DetectionSummary summary = world.detectionSummary();
  EXPECT_FALSE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
  // The attack never succeeded either: no data flowed through the attacker.
  EXPECT_EQ(world.primaryAttacker()->agent->stats().dataForwarded, 0u);
  // The verifier ended somewhere safe: an honest verified route or nothing.
  EXPECT_NE(report.outcome, core::Outcome::kAttackerConfirmed);
}

TEST(LoopFreedomTest, DataPacketsNeverLoop) {
  // AODV's sequence-number discipline guarantees loop freedom; measured
  // here as a hop bound: no delivered or in-flight packet ever traverses
  // more hops than there are vehicles.
  for (std::uint64_t seed : {51ull, 52ull, 53ull}) {
    HighwayScenario world(config(seed, AttackType::kNone));
    (void)world.runVerification();
    bool sawAbsurdHopCount = false;
    world.destination().agent->setDeliveryHandler(
        [&](const aodv::DataPacket& packet, const net::Frame&) {
          if (packet.hopsTraversed > 30) sawAbsurdHopCount = true;
        });
    (void)world.sendDataBurst(50);
    EXPECT_FALSE(sawAbsurdHopCount) << "seed " << seed;
  }
}

TEST(RevocationLifecycleTest, NoticesPurgeAtCertificateExpiry) {
  ScenarioConfig c = config(54, AttackType::kSingle);
  c.ta.certificateLifetime = sim::Duration::seconds(30);
  HighwayScenario world(c);
  (void)world.runVerification();
  auto& store = world.rsu(common::ClusterId{2}).head->revocations();
  ASSERT_EQ(store.size(), 1u);
  // Long before expiry: nothing purges.
  EXPECT_EQ(store.purgeExpired(world.simulator().now()), 0u);
  // At/after the certificate's natural expiry the notice goes away
  // (§III-B2: "remove them once they expired").
  EXPECT_EQ(store.purgeExpired(world.simulator().now() +
                               sim::Duration::seconds(40)),
            1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(DetectorEdgeTest, ReportFromRevokedReporterIsIgnored) {
  // A revoked attacker cannot weaponise d_req to harass honest nodes.
  HighwayScenario world(config(55, AttackType::kSingle, 1));
  (void)world.runVerification();  // attacker now revoked
  ASSERT_FALSE(world.taNetwork().revocations().empty());

  scenario::VehicleEntity* honest =
      world.findHonestVehicleIn(common::ClusterId{1});
  ASSERT_NE(honest, nullptr);
  const auto& detector = *world.rsu(common::ClusterId{1}).detector;
  const auto rejectedBefore = detector.stats().dreqRejectedAuth;

  // The attacker files a (properly signed!) report against an honest node.
  world.injectDetectionRequest(*world.primaryAttacker(), honest->address(),
                               common::ClusterId{1});
  world.runFor(sim::Duration::seconds(3));
  EXPECT_EQ(detector.stats().dreqRejectedAuth, rejectedBefore + 1);
  EXPECT_FALSE(world.detectionSummary().falsePositive);
}

TEST(DetectorEdgeTest, ForwardChainStopsAtMaxForwards) {
  // A suspect that keeps "moving" cannot drag a session around forever.
  HighwayScenario world(config(56, AttackType::kNone));
  world.runFor(sim::Duration::milliseconds(500));
  // Report a pseudonym that is in nobody's tables: the reported cluster
  // forwards nothing (no history), so the session ends kUnreachable there.
  world.injectDetectionRequest(world.source(), common::Address{424242},
                               common::ClusterId{5});
  world.runFor(sim::Duration::seconds(5));
  const auto& sessions =
      world.rsu(common::ClusterId{5}).detector->completedSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.front().verdict, core::Verdict::kUnreachable);
}

TEST(SessionLatencyTest, ConfirmationsAreMilliseconds) {
  // The "lightweight" claim: a same-cluster confirmation completes within
  // a handful of milliseconds of RSU time.
  HighwayScenario world(config(57, AttackType::kSingle, 1));
  world.runFor(sim::Duration::milliseconds(500));
  world.injectDetectionRequest(world.source(),
                               world.primaryAttacker()->address(),
                               common::ClusterId{1});
  world.runFor(sim::Duration::seconds(5));
  const auto& sessions =
      world.rsu(common::ClusterId{1}).detector->completedSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_LT(sessions.front().latency().us(), 50'000);  // < 50 ms
  EXPECT_GT(sessions.front().latency().us(), 0);
}

}  // namespace
}  // namespace blackdp
