// Randomised invariant checks on the stateful substrates (TEST_P sweeps).
#include <gtest/gtest.h>

#include "aodv/routing_table.hpp"
#include "crypto/revocation_store.hpp"
#include "scenario/experiments.hpp"
#include "sim/rng.hpp"

namespace blackdp {
namespace {

// ----------------------------------------------------- routing table fuzz

class RoutingTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingTableFuzz, InvariantsHoldUnderRandomOperations) {
  sim::Rng rng{GetParam()};
  aodv::RoutingTable table;
  sim::TimePoint now;

  for (int step = 0; step < 2'000; ++step) {
    now = now + sim::Duration::microseconds(rng.uniformInt(0, 1'000));
    const common::Address dest{
        static_cast<std::uint64_t>(rng.uniformInt(1, 20))};
    switch (rng.uniformInt(0, 3)) {
      case 0: {
        aodv::RouteEntry entry;
        entry.destination = dest;
        entry.nextHop =
            common::Address{static_cast<std::uint64_t>(rng.uniformInt(1, 20))};
        entry.hopCount = static_cast<std::uint8_t>(rng.uniformInt(1, 10));
        entry.destSeq = static_cast<aodv::SeqNum>(rng.uniformInt(0, 1'000));
        entry.validSeq = rng.bernoulli(0.9);
        entry.expiresAt = now + sim::Duration::microseconds(
                                    rng.uniformInt(0, 100'000));
        (void)table.update(entry, now);
        break;
      }
      case 1:
        table.invalidate(dest);
        break;
      case 2:
        (void)table.purgeExpired(now);
        break;
      case 3: {
        // I1: an active route is always valid and unexpired.
        const auto route = table.activeRoute(dest, now);
        if (route) {
          EXPECT_TRUE(route->valid);
          EXPECT_GT(route->expiresAt.us(), now.us());
          EXPECT_EQ(route->destination, dest);
        }
        break;
      }
    }
  }

  // I2: after a purge at time T, no entry expiring at or before T remains.
  (void)table.purgeExpired(now);
  for (const aodv::RouteEntry& entry : table.snapshot()) {
    EXPECT_GT(entry.expiresAt.us(), now.us());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingTableFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --------------------------------------------------- revocation store fuzz

class RevocationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RevocationFuzz, SerialAndPseudonymIndicesStayConsistent) {
  sim::Rng rng{GetParam()};
  crypto::RevocationStore store;
  sim::TimePoint now;
  std::uint64_t serial = 1;

  for (int step = 0; step < 1'000; ++step) {
    now = now + sim::Duration::microseconds(rng.uniformInt(0, 5'000));
    if (rng.bernoulli(0.7)) {
      store.add({common::Address{
                     static_cast<std::uint64_t>(rng.uniformInt(1, 10))},
                 common::CertSerial{serial++},
                 now + sim::Duration::microseconds(
                           rng.uniformInt(1, 50'000))});
    } else {
      (void)store.purgeExpired(now);
    }
    // The two indices agree: every active notice is findable by serial AND
    // by pseudonym.
    for (const crypto::RevocationNotice& notice : store.active()) {
      EXPECT_TRUE(store.isRevokedSerial(notice.serial));
      EXPECT_TRUE(store.isRevokedPseudonym(notice.pseudonym));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevocationFuzz, ::testing::Values(1, 7, 42));

// --------------------------------------------------- Fig. 5 seed stability

// The detection packet counts are protocol constants, not artifacts of one
// lucky seed: the same scripted placement costs the same packets for any
// seed.
class Fig5Stability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fig5Stability, SameClusterSingleAlwaysCostsSixPackets) {
  const auto cases = scenario::fig5Cases();
  const scenario::Fig5Result result = runFig5Case(cases[2], GetParam());
  EXPECT_EQ(result.detectionPackets, 6u);
  EXPECT_EQ(result.verdict, core::Verdict::kSingleBlackHole);
}

TEST_P(Fig5Stability, CrossClusterFleeAlwaysCostsNinePackets) {
  const auto cases = scenario::fig5Cases();
  const scenario::Fig5Result result = runFig5Case(cases[5], GetParam());
  EXPECT_EQ(result.detectionPackets, 9u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig5Stability,
                         ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace blackdp
