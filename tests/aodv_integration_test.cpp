// AODV agent integration: discovery, forwarding, maintenance on small
// line topologies driven through the real medium and event kernel.
#include <gtest/gtest.h>

#include <memory>

#include "aodv/agent.hpp"
#include "crypto/trusted_authority.hpp"
#include "net/node.hpp"

namespace blackdp::aodv {
namespace {

/// N stationary nodes on a line, `spacing` metres apart (range 1000 m), each
/// with an honest AODV agent. Address of node i is 100 + i.
class LineTopology {
 public:
  LineTopology(std::size_t count, double spacing = 800.0)
      : medium_{simulator_, sim::Rng{7}, mediumConfig()} {
    for (std::size_t i = 0; i < count; ++i) {
      auto node = std::make_unique<net::BasicNode>(
          simulator_, medium_, common::NodeId{static_cast<std::uint32_t>(i + 1)},
          mobility::LinearMotion::stationary(
              {spacing * static_cast<double>(i), 0.0}));
      node->setLocalAddress(common::Address{100 + i});
      auto agent = std::make_unique<AodvAgent>(simulator_, *node);
      nodes_.push_back(std::move(node));
      agents_.push_back(std::move(agent));
    }
  }

  [[nodiscard]] common::Address address(std::size_t i) const {
    return common::Address{100 + i};
  }
  [[nodiscard]] AodvAgent& agent(std::size_t i) { return *agents_[i]; }
  [[nodiscard]] net::BasicNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

  /// Runs discovery to completion; returns the callback's verdict.
  bool discover(std::size_t from, std::size_t to) {
    bool done = false;
    bool verdict = false;
    agents_[from]->findRoute(address(to), [&](bool ok) {
      done = true;
      verdict = ok;
    });
    simulator_.run(simulator_.now() + sim::Duration::seconds(10));
    EXPECT_TRUE(done);
    return verdict;
  }

 private:
  static net::MediumConfig mediumConfig() {
    net::MediumConfig c;
    c.maxJitter = sim::Duration{};
    return c;
  }

  sim::Simulator simulator_;
  net::WirelessMedium medium_;
  std::vector<std::unique_ptr<net::BasicNode>> nodes_;
  std::vector<std::unique_ptr<AodvAgent>> agents_;
};

TEST(AodvIntegrationTest, DirectNeighbourDiscovery) {
  LineTopology net{2};
  EXPECT_TRUE(net.discover(0, 1));
  const auto route =
      net.agent(0).routingTable().activeRoute(net.address(1),
                                              net.simulator().now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nextHop, net.address(1));
  EXPECT_EQ(route->hopCount, 1);
}

TEST(AodvIntegrationTest, MultiHopDiscoveryInstallsHopCounts) {
  LineTopology net{5};
  EXPECT_TRUE(net.discover(0, 4));
  const auto route =
      net.agent(0).routingTable().activeRoute(net.address(4),
                                              net.simulator().now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nextHop, net.address(1));
  EXPECT_EQ(route->hopCount, 4);
}

TEST(AodvIntegrationTest, ReversePathInstalledAtDestination) {
  LineTopology net{4};
  EXPECT_TRUE(net.discover(0, 3));
  const auto back =
      net.agent(3).routingTable().activeRoute(net.address(0),
                                              net.simulator().now());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nextHop, net.address(2));
}

TEST(AodvIntegrationTest, DiscoveryOfUnknownDestinationFails) {
  LineTopology net{3};
  bool done = false;
  bool verdict = true;
  net.agent(0).findRoute(common::Address{9999}, [&](bool ok) {
    done = true;
    verdict = ok;
  });
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(30));
  EXPECT_TRUE(done);
  EXPECT_FALSE(verdict);
  EXPECT_EQ(net.agent(0).stats().discoveriesFailed, 1u);
  // Retries happened: one initial flood + rreqRetries more.
  EXPECT_EQ(net.agent(0).stats().rreqOriginated, 3u);
}

TEST(AodvIntegrationTest, ExistingRouteShortCircuitsDiscovery) {
  LineTopology net{3};
  EXPECT_TRUE(net.discover(0, 2));
  const auto before = net.agent(0).stats().rreqOriginated;
  EXPECT_TRUE(net.discover(0, 2));
  EXPECT_EQ(net.agent(0).stats().rreqOriginated, before);  // no new flood
}

TEST(AodvIntegrationTest, ConcurrentCallbacksShareOneDiscovery) {
  LineTopology net{3};
  int called = 0;
  net.agent(0).findRoute(net.address(2), [&](bool ok) {
    EXPECT_TRUE(ok);
    ++called;
  });
  net.agent(0).findRoute(net.address(2), [&](bool ok) {
    EXPECT_TRUE(ok);
    ++called;
  });
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(10));
  EXPECT_EQ(called, 2);
  EXPECT_EQ(net.agent(0).stats().rreqOriginated, 1u);
}

TEST(AodvIntegrationTest, DataFlowsEndToEnd) {
  LineTopology net{4};
  EXPECT_TRUE(net.discover(0, 3));

  int delivered = 0;
  net.agent(3).setDeliveryHandler(
      [&](const DataPacket& packet, const net::Frame&) {
        EXPECT_EQ(packet.origin, net.address(0));
        EXPECT_EQ(packet.hopsTraversed, 2);  // two intermediate forwards
        ++delivered;
      });
  EXPECT_TRUE(net.agent(0).sendData(net.address(3)));
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(1));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.agent(1).stats().dataForwarded, 1u);
  EXPECT_EQ(net.agent(2).stats().dataForwarded, 1u);
  EXPECT_EQ(net.agent(3).stats().dataDelivered, 1u);
}

TEST(AodvIntegrationTest, SendDataWithoutRouteReturnsFalse) {
  LineTopology net{2};
  EXPECT_FALSE(net.agent(0).sendData(common::Address{12345}));
  EXPECT_EQ(net.agent(0).stats().dataOriginated, 0u);
}

TEST(AodvIntegrationTest, InnerPayloadRidesDataPacket) {
  LineTopology net{3};
  EXPECT_TRUE(net.discover(0, 2));
  const net::PayloadPtr inner = std::make_shared<RouteError>();
  bool sawInner = false;
  net.agent(2).setDeliveryHandler(
      [&](const DataPacket& packet, const net::Frame&) {
        sawInner = packet.inner != nullptr &&
                   dynamic_cast<const RouteError*>(packet.inner.get());
      });
  EXPECT_TRUE(net.agent(0).sendData(net.address(2), inner));
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(1));
  EXPECT_TRUE(sawInner);
}

TEST(AodvIntegrationTest, BrokenPathDropsDataAndSendsRerr) {
  LineTopology net{4};
  EXPECT_TRUE(net.discover(0, 3));
  // Node 2 loses its forward route: the chain 1→2 still works, but node 2
  // cannot reach 3 anymore (3 left the area).
  net.node(3).detachFromMedium();
  net.agent(2).invalidateRoute(net.address(3));

  EXPECT_TRUE(net.agent(0).sendData(net.address(3)));
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(1));
  EXPECT_GE(net.agent(2).stats().rerrSent + net.agent(1).stats().rerrSent, 1u);
  // The RERR invalidates the source's route.
  EXPECT_FALSE(net.agent(0)
                   .routingTable()
                   .activeRoute(net.address(3), net.simulator().now())
                   .has_value());
}

TEST(AodvIntegrationTest, IntermediateWithFreshRouteReplies) {
  LineTopology net{4};
  // Prime node 1 with a route to 3 (via a discovery from 1).
  EXPECT_TRUE(net.discover(1, 3));
  const auto floodsBefore = net.agent(3).stats().rrepOriginated;
  // Now 0 discovers 3; node 1 can answer from its table (§6.6.2).
  EXPECT_TRUE(net.discover(0, 3));
  const auto intermediateReplies = net.agent(1).stats().rrepOriginated;
  EXPECT_GE(intermediateReplies, 1u);
  (void)floodsBefore;
}

TEST(AodvIntegrationTest, RrepObserverSeesRepliesAtOriginOnly) {
  LineTopology net{3};
  int observed = 0;
  net.agent(0).setRrepObserver(
      [&](const RouteReply& rrep, const net::Frame&) {
        EXPECT_EQ(rrep.destination, net.address(2));
        ++observed;
      });
  int observedAtIntermediate = 0;
  net.agent(1).setRrepObserver(
      [&](const RouteReply&, const net::Frame&) { ++observedAtIntermediate; });
  EXPECT_TRUE(net.discover(0, 2));
  EXPECT_GE(observed, 1);
  EXPECT_EQ(observedAtIntermediate, 0);  // forwarding, not originating
}

TEST(AodvIntegrationTest, RrepFilterRejectingEverythingBlocksDiscovery) {
  LineTopology net{3};
  net.agent(0).setRrepFilter(
      [](const RouteReply&, const net::Frame&) { return false; });
  EXPECT_FALSE(net.discover(0, 2));
  EXPECT_EQ(net.agent(0).stats().discoveriesFailed, 1u);
}

TEST(AodvIntegrationTest, RrepFilterOnReplierStillAllowsCachedRelay) {
  // Filtering a replier rejects RREPs *it generates*; an honest intermediate
  // with a cached route may still answer on its behalf (its reply carries
  // its own replier identity). Full isolation needs every node to filter —
  // which is exactly what the CH's revocation announcement achieves.
  LineTopology net{3};
  net.agent(0).setRrepFilter(
      [&](const RouteReply& rrep, const net::Frame&) {
        return rrep.replier != net.address(2);
      });
  const bool found = net.discover(0, 2);
  if (found) {
    // Route must have been installed from an intermediate's reply, after
    // the destination's own reply was rejected at least once.
    const auto route = net.agent(0).routingTable().activeRoute(
        net.address(2), net.simulator().now());
    ASSERT_TRUE(route.has_value());
    EXPECT_GE(net.agent(1).stats().rrepOriginated, 1u);
  }
}

TEST(AodvIntegrationTest, TtlBoundsFloodRadius) {
  AodvConfig config;
  config.initialTtl = 2;  // reaches node 2, dies before node 3

  sim::Simulator simulator;
  net::MediumConfig mc;
  mc.maxJitter = sim::Duration{};
  net::WirelessMedium medium{simulator, sim::Rng{7}, mc};
  std::vector<std::unique_ptr<net::BasicNode>> nodes;
  std::vector<std::unique_ptr<AodvAgent>> agents;
  for (std::size_t i = 0; i < 5; ++i) {
    auto node = std::make_unique<net::BasicNode>(
        simulator, medium, common::NodeId{static_cast<std::uint32_t>(i + 1)},
        mobility::LinearMotion::stationary(
            {800.0 * static_cast<double>(i), 0.0}));
    node->setLocalAddress(common::Address{100 + i});
    agents.push_back(std::make_unique<AodvAgent>(simulator, *node, config));
    nodes.push_back(std::move(node));
  }

  bool done = false;
  bool verdict = true;
  agents[0]->findRoute(common::Address{104}, [&](bool ok) {
    done = true;
    verdict = ok;
  });
  simulator.run(simulator.now() + sim::Duration::seconds(30));
  EXPECT_TRUE(done);
  EXPECT_FALSE(verdict);  // destination out of TTL reach
  EXPECT_EQ(agents[4]->stats().rrepOriginated, 0u);
}

TEST(AodvIntegrationTest, UnicastProbeToHonestNodeStaysSilent) {
  // The detector's RREQ₁ premise: TTL-1 unicast for a fake destination gets
  // no answer and no rebroadcast from an honest node.
  LineTopology net{3};
  auto rreq = std::make_shared<RouteRequest>();
  rreq->rreqId = common::RreqId{77};
  rreq->origin = common::Address{555};
  rreq->destination = common::Address{666};  // does not exist
  rreq->ttl = 1;
  net.node(0).sendFromAlias(common::Address{555}, net.address(1), rreq);
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(2));
  EXPECT_EQ(net.agent(1).stats().rrepOriginated, 0u);
  EXPECT_EQ(net.agent(1).stats().rreqRebroadcast, 0u);
}

TEST(AodvIntegrationTest, CredentialsProduceVerifiableSecureRreps) {
  LineTopology net{3};

  sim::Simulator taSim;
  crypto::CryptoEngine engine{5};
  crypto::TaNetwork ta{taSim, engine};
  const common::TaId taId = ta.addAuthority();

  // Destination signs its replies. (Enrollment pseudonym differs from the
  // topology address, so rebind the node's address to the certificate.)
  const crypto::Enrollment enrollment =
      ta.enroll(taId, common::NodeId{3}).value();
  net.node(2).setLocalAddress(enrollment.certificate.pseudonym);
  net.agent(2).setCredentials({enrollment.certificate, enrollment.privateKey},
                              &engine);

  std::optional<RouteReply> captured;
  net.agent(0).setRrepObserver(
      [&](const RouteReply& rrep, const net::Frame&) { captured = rrep; });

  bool done = false;
  net.agent(0).findRoute(enrollment.certificate.pseudonym,
                         [&](bool) { done = true; });
  net.simulator().run(net.simulator().now() + sim::Duration::seconds(10));
  ASSERT_TRUE(done);
  ASSERT_TRUE(captured.has_value());
  ASSERT_TRUE(captured->envelope.has_value());

  const common::Bytes body = captured->canonicalBytes();
  EXPECT_TRUE(ta.validateCertificate(captured->envelope->certificate,
                                     taSim.now()));
  EXPECT_TRUE(engine.verify(
      captured->envelope->certificate.subjectKey,
      std::span<const std::uint8_t>{body.data(), body.size()},
      captured->envelope->signature));
}

TEST(AodvIntegrationTest, OwnSequenceNumberGrowsPerDiscovery) {
  LineTopology net{2};
  const SeqNum before = net.agent(0).ownSeq();
  EXPECT_TRUE(net.discover(0, 1));
  EXPECT_TRUE(seqNewer(net.agent(0).ownSeq(), before));
}

TEST(AodvIntegrationTest, ExpandingRingFindsNearDestinationCheaply) {
  // RFC 3561 §6.4: a near destination is found with a small-TTL flood; far
  // nodes never rebroadcast it.
  AodvConfig config;
  config.expandingRing = true;
  config.ttlStart = 1;
  config.ttlIncrement = 2;

  sim::Simulator simulator;
  net::MediumConfig mc;
  mc.maxJitter = sim::Duration{};
  net::WirelessMedium medium{simulator, sim::Rng{7}, mc};
  std::vector<std::unique_ptr<net::BasicNode>> nodes;
  std::vector<std::unique_ptr<AodvAgent>> agents;
  for (std::size_t i = 0; i < 6; ++i) {
    auto node = std::make_unique<net::BasicNode>(
        simulator, medium, common::NodeId{static_cast<std::uint32_t>(i + 1)},
        mobility::LinearMotion::stationary(
            {800.0 * static_cast<double>(i), 0.0}));
    node->setLocalAddress(common::Address{100 + i});
    agents.push_back(std::make_unique<AodvAgent>(simulator, *node, config));
    nodes.push_back(std::move(node));
  }

  bool found = false;
  agents[0]->findRoute(common::Address{101}, [&](bool ok) { found = ok; });
  simulator.run(simulator.now() + sim::Duration::seconds(5));
  EXPECT_TRUE(found);
  // TTL 1 reached the neighbour; the tail of the line never saw the flood.
  EXPECT_EQ(agents[3]->stats().rreqRebroadcast, 0u);
  EXPECT_EQ(agents[4]->stats().rreqRebroadcast, 0u);
}

TEST(AodvIntegrationTest, ExpandingRingWidensToFarDestination) {
  AodvConfig config;
  config.expandingRing = true;
  config.ttlStart = 1;
  config.ttlIncrement = 2;
  config.rreqRetries = 3;  // 1 → 3 → 5 → 7 rings

  sim::Simulator simulator;
  net::MediumConfig mc;
  mc.maxJitter = sim::Duration{};
  net::WirelessMedium medium{simulator, sim::Rng{7}, mc};
  std::vector<std::unique_ptr<net::BasicNode>> nodes;
  std::vector<std::unique_ptr<AodvAgent>> agents;
  for (std::size_t i = 0; i < 6; ++i) {
    auto node = std::make_unique<net::BasicNode>(
        simulator, medium, common::NodeId{static_cast<std::uint32_t>(i + 1)},
        mobility::LinearMotion::stationary(
            {800.0 * static_cast<double>(i), 0.0}));
    node->setLocalAddress(common::Address{100 + i});
    agents.push_back(std::make_unique<AodvAgent>(simulator, *node, config));
    nodes.push_back(std::move(node));
  }

  bool done = false;
  bool found = false;
  agents[0]->findRoute(common::Address{105}, [&](bool ok) {
    done = true;
    found = ok;
  });
  simulator.run(simulator.now() + sim::Duration::seconds(30));
  EXPECT_TRUE(done);
  EXPECT_TRUE(found);  // 5 hops away: found once the ring reaches TTL 5+
  // More than one flood was needed.
  EXPECT_GE(agents[0]->stats().rreqOriginated, 3u);
}

TEST(AodvIntegrationTest, FloodDedupBoundsRebroadcasts) {
  LineTopology net{6, 400.0};  // dense: everyone hears several copies
  EXPECT_TRUE(net.discover(0, 5));
  for (std::size_t i = 1; i < 5; ++i) {
    // Each node rebroadcast each flood at most once.
    EXPECT_LE(net.agent(i).stats().rreqRebroadcast, 1u) << "node " << i;
  }
}

TEST(AodvIntegrationTest, RreqSeenCacheStaysFlatAcrossFloods) {
  // Regression guard for the dedup cache: before TTL pruning it grew by one
  // entry per flood for the life of the agent. Drive floods for well past
  // rreqCacheLifetime (10 s) of simulated time and check the live size is
  // bounded by the TTL window, not by the flood count.
  LineTopology net{3};
  constexpr int kRounds = 60;
  for (int round = 0; round < kRounds; ++round) {
    net.agent(0).invalidateRoute(net.address(2));
    EXPECT_TRUE(net.discover(0, 2));
    // discover() drains the queue in ~150 ms of sim time; stretch each
    // round so the 60 floods span several cache lifetimes.
    net.simulator().fastForward(net.simulator().now() +
                                sim::Duration::milliseconds(500));
  }
  const AodvAgent& middle = net.agent(1);
  // Entries outside the 10 s lifetime were pruned...
  EXPECT_GT(middle.stats().rreqSeenEvicted, 0u);
  // ...so the live cache holds at most the floods of the last lifetime
  // (~15 of the 60 rounds at ~650 ms per round), not the whole history.
  EXPECT_LT(middle.rreqSeenSize(), kRounds / 2);
  // Nothing vanished without being counted: evicted + live covers every
  // recorded flood.
  EXPECT_EQ(middle.rreqSeenSize() + middle.stats().rreqSeenEvicted,
            static_cast<std::size_t>(kRounds));
}

}  // namespace
}  // namespace blackdp::aodv
