// Zero-allocation steady-state guard.
//
// Links common/alloc_hook (counting operator new/delete) and asserts that a
// steady-state Medium::send → deliver → AODV-forward cycle performs zero
// heap allocations once the pools are warm: payloads come from the arena,
// simulator slots and heap entries recycle, and the dense-id tables stop
// rehashing. A negative control verifies the hook actually counts, so a
// silently-unlinked hook cannot fake a pass.
//
// Under ASan/UBSan the sanitizer runtime owns the allocator and adds its
// own bookkeeping allocations, so the zero-delta assertion is skipped there
// (the cycle still runs; the negative control still must count).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "aodv/agent.hpp"
#include "common/alloc_hook.hpp"
#include "net/node.hpp"

namespace blackdp {
namespace {

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Five stationary nodes on a line, 800 m apart (range 1000 m): every data
/// packet from node 0 to node 4 crosses four AODV forwarding hops.
class SteadyLine {
 public:
  static constexpr std::size_t kNodes = 5;

  SteadyLine() : medium_{simulator_, sim::Rng{7}, mediumConfig()} {
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto node = std::make_unique<net::BasicNode>(
          simulator_, medium_,
          common::NodeId{static_cast<std::uint32_t>(i + 1)},
          mobility::LinearMotion::stationary(
              {800.0 * static_cast<double>(i), 0.0}));
      node->setLocalAddress(common::Address{100 + i});
      auto agent = std::make_unique<aodv::AodvAgent>(simulator_, *node);
      nodes_.push_back(std::move(node));
      agents_.push_back(std::move(agent));
    }
  }

  bool establishRoute() {
    bool ok = false;
    agents_.front()->findRoute(destination(), [&ok](bool good) { ok = good; });
    simulator_.run(simulator_.now() + sim::Duration::seconds(10));
    return ok;
  }

  /// One steady-state cycle: source sends a data packet, the queue drains
  /// (four forward hops plus MAC ACK echoes).
  void cycle() {
    agents_.front()->sendData(destination());
    simulator_.run();
  }

  [[nodiscard]] common::Address destination() const {
    return common::Address{100 + kNodes - 1};
  }
  [[nodiscard]] aodv::AodvAgent& destinationAgent() {
    return *agents_.back();
  }

 private:
  static net::MediumConfig mediumConfig() {
    net::MediumConfig c;
    c.maxJitter = sim::Duration{};  // deterministic spacing, no RNG churn
    return c;
  }

  sim::Simulator simulator_;
  net::WirelessMedium medium_;
  std::vector<std::unique_ptr<net::BasicNode>> nodes_;
  std::vector<std::unique_ptr<aodv::AodvAgent>> agents_;
};

/// Negative control: the hook must be linked and must observe an ordinary
/// heap allocation, otherwise the zero-delta test below proves nothing.
TEST(AllocGuardTest, HookCountsOrdinaryAllocations) {
  ASSERT_TRUE(common::allocHookActive())
      << "blackdp_alloc_hook is not linked into this test binary";

  const common::AllocCounters before = common::threadAllocCounters();
  auto block = std::make_unique<std::vector<std::uint64_t>>();
  block->resize(4096);
  const common::AllocCounters after = common::threadAllocCounters();
  ASSERT_GT(after.allocations, before.allocations);
  block.reset();
  const common::AllocCounters freed = common::threadAllocCounters();
  ASSERT_GT(freed.deallocations, after.deallocations);
}

TEST(AllocGuardTest, SteadyStateForwardingCycleIsAllocationFree) {
  ASSERT_TRUE(common::allocHookActive());

  SteadyLine line;
  ASSERT_TRUE(line.establishRoute());

  // Warmup: payload arena free lists fill, simulator heap/slot vectors and
  // the dense-id tables reach their steady-state capacity.
  constexpr int kWarmupCycles = 256;
  constexpr int kMeasuredCycles = 512;
  for (int i = 0; i < kWarmupCycles; ++i) line.cycle();

  const std::uint64_t deliveredBefore =
      line.destinationAgent().stats().dataDelivered;
  const common::AllocCounters before = common::threadAllocCounters();
  for (int i = 0; i < kMeasuredCycles; ++i) line.cycle();
  const common::AllocCounters after = common::threadAllocCounters();

  // The workload must actually have run end to end.
  EXPECT_EQ(line.destinationAgent().stats().dataDelivered,
            deliveredBefore + kMeasuredCycles);

  if (kSanitized) {
    GTEST_SKIP() << "sanitizer runtime owns the allocator; zero-delta "
                    "assertion is only meaningful in the plain build";
  }
  EXPECT_EQ(after.allocations, before.allocations)
      << (after.allocations - before.allocations) << " heap allocations in "
      << kMeasuredCycles << " steady-state send->deliver->forward cycles";
  EXPECT_EQ(after.deallocations, before.deallocations);
}

}  // namespace
}  // namespace blackdp
