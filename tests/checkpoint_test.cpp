// Checkpoint envelope: round-trip identity, a deterministic corruption
// corpus (bit flips, truncation at every prefix, version skew, trailing
// bytes), and the crash-consistency contract of writeFileAtomic.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "codec/checkpoint.hpp"
#include "common/bytes.hpp"

namespace blackdp::codec {
namespace {

common::Bytes sampleEnvelope() {
  CheckpointBuilder builder;
  builder.add(CheckpointTag::kMeta, common::Bytes{0xAA, 0xBB});
  builder.add(CheckpointTag::kCluster, common::Bytes{1, 2, 3});
  builder.add(CheckpointTag::kCluster, common::Bytes{4, 5, 6, 7});
  builder.add(CheckpointTag::kStream, common::Bytes{});
  return builder.finish();
}

/// Strips the trailing CRC, applies `mutate` to the payload, and re-seals
/// with a fresh valid CRC — for reaching error paths beyond the CRC gate.
template <typename Fn>
common::Bytes resealed(common::Bytes blob, Fn mutate) {
  blob.resize(blob.size() - 4);
  mutate(blob);
  const std::uint32_t crc = crc32(blob);
  for (int shift = 24; shift >= 0; shift -= 8) {
    blob.push_back(static_cast<std::uint8_t>((crc >> shift) & 0xff));
  }
  return blob;
}

TEST(CheckpointTest, RoundTripPreservesSectionsInOrder) {
  const common::Bytes blob = sampleEnvelope();
  const auto decoded = decodeCheckpoint(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.error().code;
  const Checkpoint& checkpoint = decoded.value();
  EXPECT_EQ(checkpoint.version, kCheckpointVersion);
  ASSERT_EQ(checkpoint.sections.size(), 4u);
  EXPECT_EQ(checkpoint.sections[0].tag,
            static_cast<std::uint16_t>(CheckpointTag::kMeta));
  EXPECT_EQ(checkpoint.sections[1].body, (common::Bytes{1, 2, 3}));
  EXPECT_EQ(checkpoint.sections[2].body, (common::Bytes{4, 5, 6, 7}));
  EXPECT_TRUE(checkpoint.sections[3].body.empty());
}

TEST(CheckpointTest, EmptyEnvelopeRoundTrips) {
  const common::Bytes blob = CheckpointBuilder{}.finish();
  const auto decoded = decodeCheckpoint(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.error().code;
  EXPECT_TRUE(decoded.value().sections.empty());
}

TEST(CheckpointTest, FindReturnsFirstAndFindAllReturnsEveryMatch) {
  const auto decoded = decodeCheckpoint(sampleEnvelope());
  ASSERT_TRUE(decoded.ok());
  const Checkpoint& checkpoint = decoded.value();
  ASSERT_NE(checkpoint.find(CheckpointTag::kMeta), nullptr);
  EXPECT_EQ(*checkpoint.find(CheckpointTag::kCluster),
            (common::Bytes{1, 2, 3}));
  EXPECT_EQ(checkpoint.find(CheckpointTag::kTa), nullptr);
  EXPECT_EQ(checkpoint.findAll(CheckpointTag::kCluster).size(), 2u);
  EXPECT_TRUE(checkpoint.findAll(CheckpointTag::kMedium).empty());
}

// --- corruption corpus -----------------------------------------------------

TEST(CheckpointCorruptionTest, TruncationAtEveryPrefixIsATypedError) {
  const common::Bytes blob = sampleEnvelope();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const auto decoded = decodeCheckpoint({blob.data(), len});
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    const std::string& code = decoded.error().code;
    EXPECT_TRUE(code == "truncated" || code == "bad-magic" ||
                code == "bad-crc" || code == "malformed")
        << "prefix length " << len << " gave " << code;
  }
}

TEST(CheckpointCorruptionTest, EveryBitFlipIsDetected) {
  const common::Bytes pristine = sampleEnvelope();
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      common::Bytes blob = pristine;
      blob[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto decoded = decodeCheckpoint(blob);
      EXPECT_FALSE(decoded.ok()) << "flip byte " << i << " bit " << bit;
    }
  }
}

TEST(CheckpointCorruptionTest, VersionSkewIsTypedEvenWithAValidCrc) {
  // Patch the schema version (offset 4..5, big-endian u16) and re-seal, so
  // the CRC gate passes and the version gate must do the rejecting.
  const common::Bytes blob = resealed(sampleEnvelope(), [](common::Bytes& b) {
    b[4] = 0;
    b[5] = static_cast<std::uint8_t>(kCheckpointVersion + 1);
  });
  const auto decoded = decodeCheckpoint(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bad-version");
  EXPECT_NE(decoded.error().detail.find(
                "v" + std::to_string(kCheckpointVersion + 1)),
            std::string::npos)
      << decoded.error().detail;
}

TEST(CheckpointCorruptionTest, TrailingBytesAfterSectionsAreMalformed) {
  const common::Bytes blob = resealed(
      sampleEnvelope(), [](common::Bytes& b) { b.push_back(0x00); });
  const auto decoded = decodeCheckpoint(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "malformed");
}

TEST(CheckpointCorruptionTest, OversizedSectionLengthIsTruncatedNotUB) {
  // Inflate the first section's length prefix far past the buffer and
  // re-seal: the reader must fail typed, not read out of bounds. Layout:
  // magic(4) version(2) count(4) tag(2) -> length prefix at offset 12.
  const common::Bytes blob = resealed(sampleEnvelope(), [](common::Bytes& b) {
    b[12] = 0xFF;
    b[13] = 0xFF;
    b[14] = 0xFF;
    b[15] = 0xFF;
  });
  const auto decoded = decodeCheckpoint(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "truncated");
}

TEST(CheckpointCorruptionTest, CrcMatchesTheReferenceCheckValue) {
  // CRC-32/ISO-HDLC check value for "123456789" — pins binascii.crc32
  // compatibility, which scripts/validate_bench_json.py relies on.
  const char* digits = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::uint8_t*>(digits), 9}),
            0xCBF43926u);
}

// --- atomic file writes ----------------------------------------------------

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path{::testing::TempDir()} /
           "blackdp_checkpoint_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] bool tempFilesLeftBehind() const {
    for (const auto& entry : std::filesystem::directory_iterator{dir_}) {
      if (entry.path().extension() == ".tmp") return true;
    }
    return false;
  }

  std::filesystem::path dir_;
};

TEST_F(AtomicWriteTest, WriteThenReadRoundTrips) {
  const common::Bytes payload{9, 8, 7, 6};
  const auto wrote = writeFileAtomic(path("a.bdpc"), payload);
  ASSERT_TRUE(wrote.ok()) << wrote.error().detail;
  const auto read = readFile(path("a.bdpc"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
  EXPECT_FALSE(tempFilesLeftBehind());
}

TEST_F(AtomicWriteTest, CrashBeforeRenameLeavesFreshPathAbsent) {
  const common::Bytes payload{1, 2, 3};
  EXPECT_THROW(
      (void)writeFileAtomic(path("fresh.bdpc"), payload,
                            [] { throw std::runtime_error{"worker died"}; }),
      std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(path("fresh.bdpc")));
  EXPECT_FALSE(tempFilesLeftBehind());
}

TEST_F(AtomicWriteTest, CrashBeforeRenamePreservesPreviousContents) {
  const common::Bytes old{0xDE, 0xAD};
  ASSERT_TRUE(writeFileAtomic(path("ckpt.bdpc"), old).ok());
  const common::Bytes replacement{0xBE, 0xEF, 0x00};
  EXPECT_THROW(
      (void)writeFileAtomic(path("ckpt.bdpc"), replacement,
                            [] { throw std::runtime_error{"kill -9"}; }),
      std::runtime_error);
  const auto read = readFile(path("ckpt.bdpc"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), old);  // the old complete checkpoint survives
  EXPECT_FALSE(tempFilesLeftBehind());
}

TEST_F(AtomicWriteTest, ReadFileOnMissingPathIsTypedIoError) {
  const auto read = readFile(path("nope.bdpc"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, "io");
}

}  // namespace
}  // namespace blackdp::codec
