// Watchdog forwarding observation: overheard handoffs, retransmission
// credit, drop charges, and gray hole exposure.
#include <gtest/gtest.h>

#include <memory>

#include "attack/gray_hole_agent.hpp"
#include "baselines/watchdog.hpp"
#include "net/node.hpp"

namespace blackdp::baselines {
namespace {

net::MediumConfig quietMedium() {
  net::MediumConfig c;
  c.maxJitter = sim::Duration{};
  return c;
}

/// Line 0 — 1 — 2 (800 m spacing: the ends are out of mutual range, so the
/// middle node must forward), with a watchdog on node 0 watching its own
/// handoffs to node 1.
class WatchdogRig {
 public:
  explicit WatchdogRig(bool middleIsGrayHole, double dropProbability = 1.0)
      : medium_{simulator_, sim::Rng{7}, quietMedium()} {
    for (std::size_t i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<net::BasicNode>(
          simulator_, medium_,
          common::NodeId{static_cast<std::uint32_t>(i + 1)},
          mobility::LinearMotion::stationary(
              {800.0 * static_cast<double>(i), 0.0})));
      nodes_[i]->setLocalAddress(common::Address{100 + i});
    }
    agents_.push_back(std::make_unique<aodv::AodvAgent>(simulator_, *nodes_[0]));
    if (middleIsGrayHole) {
      attack::GrayHoleConfig config;
      config.dropProbability = dropProbability;
      agents_.push_back(std::make_unique<attack::GrayHoleAgent>(
          simulator_, *nodes_[1], config, sim::Rng{3}));
    } else {
      agents_.push_back(
          std::make_unique<aodv::AodvAgent>(simulator_, *nodes_[1]));
    }
    agents_.push_back(std::make_unique<aodv::AodvAgent>(simulator_, *nodes_[2]));
    watchdog_ = std::make_unique<Watchdog>(simulator_, *nodes_[0]);
  }

  void establishAndSend(int packets) {
    bool found = false;
    agents_[0]->findRoute(common::Address{102}, [&](bool ok) { found = ok; });
    simulator_.run(simulator_.now() + sim::Duration::seconds(5));
    ASSERT_TRUE(found);
    for (int i = 0; i < packets; ++i) {
      (void)agents_[0]->sendData(common::Address{102});
    }
    simulator_.run(simulator_.now() + sim::Duration::seconds(5));
  }

  sim::Simulator simulator_;
  net::WirelessMedium medium_;
  std::vector<std::unique_ptr<net::BasicNode>> nodes_;
  std::vector<std::unique_ptr<aodv::AodvAgent>> agents_;
  std::unique_ptr<Watchdog> watchdog_;
};

TEST(WatchdogTest, HonestForwarderEarnsTrust) {
  WatchdogRig rig{/*middleIsGrayHole=*/false};
  rig.establishAndSend(20);
  EXPECT_GE(rig.watchdog_->stats().forwardsObserved, 20u);
  EXPECT_EQ(rig.watchdog_->stats().dropsCharged, 0u);
  EXPECT_GT(rig.watchdog_->trust().trust(common::Address{101}), 0.9);
  EXPECT_TRUE(rig.watchdog_->suspects().empty());
}

TEST(WatchdogTest, FullGrayHoleGetsCharged) {
  WatchdogRig rig{/*middleIsGrayHole=*/true, 1.0};
  rig.establishAndSend(20);
  EXPECT_GE(rig.watchdog_->stats().dropsCharged, 15u);
  EXPECT_LT(rig.watchdog_->trust().trust(common::Address{101}), 0.25);
  const auto suspects = rig.watchdog_->suspects();
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], common::Address{101});
}

TEST(WatchdogTest, PartialGrayHoleStillExposed) {
  WatchdogRig rig{/*middleIsGrayHole=*/true, 0.7};
  rig.establishAndSend(60);
  EXPECT_GT(rig.watchdog_->stats().dropsCharged, 25u);
  EXPECT_GT(rig.watchdog_->stats().forwardsObserved, 5u);
  EXPECT_TRUE(rig.watchdog_->trust().isMalicious(common::Address{101}));
}

TEST(WatchdogTest, DeliveryToFinalDestinationIsNotWatched) {
  // A handoff to the packet's own destination owes no retransmission.
  WatchdogRig rig{/*middleIsGrayHole=*/false};
  bool found = false;
  rig.agents_[0]->findRoute(common::Address{101}, [&](bool ok) { found = ok; });
  rig.simulator_.run(rig.simulator_.now() + sim::Duration::seconds(5));
  ASSERT_TRUE(found);
  (void)rig.agents_[0]->sendData(common::Address{101});
  rig.simulator_.run(rig.simulator_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(rig.watchdog_->stats().handoffsWatched, 0u);
  EXPECT_EQ(rig.watchdog_->stats().dropsCharged, 0u);
}

TEST(WatchdogTest, VerdictRequiresEvidenceVolume) {
  WatchdogRig rig{/*middleIsGrayHole=*/true, 1.0};
  bool found = false;
  rig.agents_[0]->findRoute(common::Address{102}, [&](bool ok) { found = ok; });
  rig.simulator_.run(rig.simulator_.now() + sim::Duration::seconds(5));
  ASSERT_TRUE(found);
  // Two drops are suspicious but below the minObservations bar.
  (void)rig.agents_[0]->sendData(common::Address{102});
  (void)rig.agents_[0]->sendData(common::Address{102});
  rig.simulator_.run(rig.simulator_.now() + sim::Duration::seconds(2));
  EXPECT_FALSE(rig.watchdog_->trust().isMalicious(common::Address{101}));
}

}  // namespace
}  // namespace blackdp::baselines
