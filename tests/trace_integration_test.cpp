// End-to-end observability tests against real scenario runs:
//  - the determinism contract (recording on/off changes no traffic byte),
//  - the acceptance timeline (a cooperative-black-hole trace reconstructs
//    the full suspicion → d_req → probe → verdict → isolation chain through
//    the JSONL round trip),
//  - drop-cause attribution reconciling with the fault injector's own
//    counts.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/telemetry.hpp"

namespace {

using namespace blackdp;

scenario::ScenarioConfig cooperativeConfig(std::uint64_t seed) {
  scenario::ScenarioConfig config;
  config.seed = seed;
  config.attack = scenario::AttackType::kCooperative;
  config.attackerCluster = common::ClusterId{2};
  config.attackerFakesHelloReply = true;
  return config;
}

// ----------------------------------------------------- determinism contract

TEST(TraceDeterminismTest, RecorderOnOffLeavesTrafficIdentical) {
  // Same seed, one run recording everything, one run recording nothing: the
  // trace layer must not perturb a single RNG draw or event. Extends the
  // InertPlanLeavesTrafficIdentical pattern to the recorder itself.
  const auto run = [](bool record) {
    obs::MemoryRecorder recorder;
    obs::ScopedTraceRecorder scoped{record ? &recorder : nullptr};
    scenario::HighwayScenario world(cooperativeConfig(42));
    (void)world.runVerification();
    (void)world.sendDataBurst(50);
    return std::pair{world.medium().stats(), world.backbone().stats()};
  };

  const auto [mediumOff, backboneOff] = run(false);
  const auto [mediumOn, backboneOn] = run(true);

  EXPECT_EQ(mediumOff.framesSent, mediumOn.framesSent);
  EXPECT_EQ(mediumOff.framesDelivered, mediumOn.framesDelivered);
  EXPECT_EQ(mediumOff.framesLost, mediumOn.framesLost);
  EXPECT_EQ(mediumOff.bytesSent, mediumOn.bytesSent);
  EXPECT_EQ(backboneOff.messagesSent, backboneOn.messagesSent);
  EXPECT_EQ(backboneOff.messagesDelivered, backboneOn.messagesDelivered);
  EXPECT_EQ(backboneOff.bytesSent, backboneOn.bytesSent);
}

TEST(TraceDeterminismTest, RecordedRunsReplayIdentically) {
  const auto trace = [](std::uint64_t seed) {
    obs::MemoryRecorder recorder;
    obs::ScopedTraceRecorder scoped{&recorder};
    scenario::HighwayScenario world(cooperativeConfig(seed));
    (void)world.runVerification();
    return recorder.events();
  };
  EXPECT_EQ(trace(7), trace(7));
}

// ------------------------------------------------------ acceptance timeline

TEST(TraceTimelineTest, CooperativeRunReconstructsFullChain) {
  obs::MemoryRecorder recorder;
  {
    obs::ScopedTraceRecorder scoped{&recorder};
    scenario::HighwayScenario world(cooperativeConfig(7));
    const core::VerificationReport report = world.runVerification();
    ASSERT_EQ(report.outcome, core::Outcome::kAttackerConfirmed);
    ASSERT_EQ(world.detectionSummary().verdict,
              core::Verdict::kCooperativeBlackHole);
  }

  // Through the on-disk format: write JSONL, read it back, reconstruct.
  std::stringstream stream;
  obs::writeJsonl(recorder.events(), stream);
  const std::vector<obs::TraceEvent> loaded = obs::readJsonl(stream);
  EXPECT_EQ(loaded, recorder.events());

  const obs::TraceReport report = obs::buildReport(loaded);
  ASSERT_FALSE(report.sessions.empty());

  bool foundComplete = false;
  for (const obs::SessionTimeline& session : report.sessions) {
    if (session.verdict != "cooperative-black-hole") continue;
    foundComplete = true;
    EXPECT_TRUE(session.complete());
    EXPECT_GE(session.isolatedAtUs, session.verdictAtUs);
    // Stages in causal order.
    EXPECT_LE(session.suspectedAtUs, session.dreqAtUs);
    EXPECT_LT(session.dreqAtUs, session.probeAtUs);
    EXPECT_LT(session.probeAtUs, session.verdictAtUs);
    // The probe pair: RREQ₁ and RREQ₂ (plus the teammate probe) show up as
    // distinct probe-sent entries.
    std::size_t probes = 0;
    for (const auto& entry : session.entries) {
      if (entry.label.find("probe-sent") != std::string::npos) ++probes;
    }
    EXPECT_GE(probes, 2u);
  }
  EXPECT_TRUE(foundComplete);

  // The CH verification table saw the session in and out.
  EXPECT_GE(report.eventsByKind.at("ch-table"), 2u);
}

// -------------------------------------------------- drop-cause attribution

TEST(DropCauseTest, MediumDropCountsReconcileWithInjectedFaults) {
  scenario::ScenarioConfig config;
  config.seed = 42;
  config.attack = scenario::AttackType::kNone;
  fault::JamZoneEvent jam;
  jam.xMin = 1'200.0;
  jam.xMax = 1'800.0;
  jam.from = sim::TimePoint::fromUs(200'000);
  jam.until = sim::TimePoint::fromUs(1'500'000);
  config.faults.jamZones.push_back(jam);
  fault::BurstLossEvent burst;
  burst.channel = fault::GilbertElliott{0.05, 0.2, 0.0, 0.8};
  config.faults.burstLoss.push_back(burst);

  obs::MemoryRecorder recorder;
  obs::ScopedTraceRecorder scoped{&recorder};
  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::seconds(2));

  ASSERT_NE(world.faultInjector(), nullptr);
  const fault::FaultStats& faults = world.faultInjector()->stats();
  const net::MediumStats& medium = world.medium().stats();

  // Every fault-layer drop the injector charged shows up, cause-tagged, in
  // the medium's books — nothing double-counted, nothing untagged.
  EXPECT_EQ(medium.framesJamDropped, faults.framesJammed);
  EXPECT_EQ(medium.framesBurstDropped, faults.framesBurstLost);
  EXPECT_EQ(medium.framesFaultDropped,
            medium.framesJamDropped + medium.framesBurstDropped);
  EXPECT_GT(medium.framesFaultDropped, 0u);

  // And the trace agrees event-for-event with the counters.
  std::uint64_t jamEvents = 0;
  std::uint64_t burstEvents = 0;
  std::uint64_t randomEvents = 0;
  for (const obs::TraceEvent& event : recorder.events()) {
    if (event.kind != obs::EventKind::kFrameDrop) continue;
    switch (static_cast<obs::DropCause>(event.op)) {
      case obs::DropCause::kJam: ++jamEvents; break;
      case obs::DropCause::kBurstLoss: ++burstEvents; break;
      case obs::DropCause::kRandomLoss: ++randomEvents; break;
      default: break;
    }
  }
  EXPECT_EQ(jamEvents, faults.framesJammed);
  EXPECT_EQ(burstEvents, faults.framesBurstLost);
  EXPECT_EQ(randomEvents, medium.framesLost);
}

}  // namespace
