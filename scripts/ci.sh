#!/usr/bin/env bash
# CI entry point: build and test the plain configuration, then repeat under
# AddressSanitizer + UBSan (the discrete-event core is all callbacks and
# shared_ptr payload fan-out — exactly the code ASan/UBSan are good at).
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan-ubsan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
done

echo "CI: both configurations green."
