#!/usr/bin/env bash
# CI entry point: build and test the plain configuration, then repeat under
# AddressSanitizer + UBSan (the discrete-event core is all callbacks and
# shared_ptr payload fan-out — exactly the code ASan/UBSan are good at),
# then run the bench smoke pass: one small run per bench family, each
# writing a BENCH_<name>.json that is validated against the schema, plus a
# traced example run fed through trace_report.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan-ubsan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
done

echo "==== bench smoke ===="
out="build/bench-out"
rm -rf "$out" && mkdir -p "$out"
export BLACKDP_BENCH_OUT="$PWD/$out"
(
  cd build
  ./bench/table1_scenario
  ./bench/fig4_detection 2 --jobs "$jobs"
  ./bench/fig5_packets --jobs "$jobs"
  ./bench/ablation_baselines 5 --jobs "$jobs"
  ./bench/ablation_pdr 2 --jobs "$jobs"
  ./bench/ablation_watchdog 2 --jobs "$jobs"
  ./bench/ablation_fog --jobs "$jobs"
  ./bench/ablation_faults 2 --jobs "$jobs"
  ./bench/ablation_adversarial 3 --jobs "$jobs"
  ./bench/urban_detection 2 --jobs "$jobs"
  ./bench/sensitivity_sweep 3 --jobs "$jobs"
  ./bench/ablation_overhead --benchmark_min_time=0.01
  ./bench/micro_substrates --benchmark_min_time=0.01
  ./bench/e2e_throughput --jobs "$jobs"
  ./bench/megacity --segments 8 --vehicles 800 --epochs 6 --jobs "$jobs" \
    --surfaces-out-a "$BLACKDP_BENCH_OUT"/megacity.shards1.txt \
    --surfaces-out-b "$BLACKDP_BENCH_OUT"/megacity.shards4.txt
  ./examples/cooperative_blackhole 7 --trace "$BLACKDP_BENCH_OUT"/coop_trace.jsonl
  ./tools/trace_report "$BLACKDP_BENCH_OUT"/coop_trace.jsonl
) > "$out/bench-smoke.log"
python3 scripts/validate_bench_json.py "$out"/BENCH_*.json
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_micro_substrates.json \
  "$out"/BENCH_micro_substrates.json

echo "==== perf smoke (e2e throughput + allocation gate) ===="
# The e2e bench links the counting operator new/delete; bench_compare holds
# both frames_per_second (generous, wall-clock noise) and
# allocations_per_frame (tight — the zero-allocation steady state is a
# correctness property of the arena/dense-id design, not a speed number).
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_e2e_throughput.json \
  "$out"/BENCH_e2e_throughput.json

echo "==== megacity smoke (sharded corridor, shards=1 vs shards=4) ===="
# The partition-invariance gate: both runs of the tiny corridor above dumped
# their deterministic surfaces (metrics JSON + canonical per-segment log);
# they must be byte-identical, or region partitioning has become observable.
cmp "$out"/megacity.shards1.txt "$out"/megacity.shards4.txt
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_megacity.json \
  "$out"/BENCH_megacity.json
# The committed baseline must demonstrate the point of the sharding: the
# partitioned run strictly outruns the monolith on the baseline machine.
python3 - <<'PY'
import json
side = json.load(open("bench/baselines/BENCH_megacity.json"))["sharding"]
assert side["identical"] is True, "baseline surfaces were not identical"
assert side["speedup"] > 1.0, f"baseline speedup {side['speedup']} <= 1.0"
print(f"baseline: speedup {side['speedup']:.2f}, "
      f"balance {side['balance_ratio']:.3f} — OK")
PY

echo "==== campaign smoke ===="
# Exercise the campaign engine end to end: run the tiny built-in spec with
# a pinned sidecar, validate the manifest + bench JSON, then truncate the
# manifest mid-campaign and check --resume reproduces the exact same bytes.
campdir="$out/campaign"
mkdir -p "$campdir"
build/tools/campaign_run smoke --jobs 2 --out "$campdir" --pin-sidecar
python3 scripts/validate_bench_json.py \
  "$campdir"/smoke.manifest.jsonl "$campdir"/BENCH_smoke.json
cp "$campdir"/smoke.manifest.jsonl "$campdir"/smoke.full.jsonl
head -n 3 "$campdir"/smoke.manifest.jsonl > "$campdir"/smoke.tmp.jsonl
mv "$campdir"/smoke.tmp.jsonl "$campdir"/smoke.manifest.jsonl
cp "$campdir"/BENCH_smoke.json "$campdir"/BENCH_smoke.full.json
build/tools/campaign_run smoke --jobs 1 --out "$campdir" --pin-sidecar --resume
cmp "$campdir"/smoke.manifest.jsonl "$campdir"/smoke.full.jsonl
cmp "$campdir"/BENCH_smoke.json "$campdir"/BENCH_smoke.full.json
rm "$campdir"/smoke.full.jsonl "$campdir"/BENCH_smoke.full.json

echo "==== soak smoke ===="
# Time-boxed chaos soak: randomized adversarial trials, every invariant must
# hold. On failure soak_run prints one replay line per violation
# (soak_run --seed S --trial K); the log is kept for upload as an artifact.
soaklog="$out/soak-smoke.log"
build/tools/soak_run --seconds 20 --jobs "$jobs" --seed 1 | tee "$soaklog"
# Negative control: an injected honest-isolation violation must be caught,
# reported with a replay seed, and fail the run.
if build/tools/soak_run --trials 1 --seed 1 --inject-violation --quiet \
    >> "$soaklog"; then
  echo "soak_run --inject-violation did NOT fail — harness is blind" >&2
  exit 1
fi
grep -q "replay: soak_run --seed" "$soaklog"

echo "==== stream soak (checkpoint / kill / resume) ===="
# Detector-as-a-service crash consistency. An uninterrupted checkpointed run
# and a run killed between checkpoints then resumed must converge: identical
# metrics JSON and a byte-identical final checkpoint. The recorded d_req
# trace replayed through replay_serve must reproduce the recorded verdict
# hash, and validate_bench_json.py audits the checkpoint manifest
# (size + CRC-32 + envelope header per entry).
streamdir="$out/stream"
rm -rf "$streamdir" && mkdir -p "$streamdir"
build/tools/soak_run --stream --epochs 40 --stream-seed 4242 \
  --checkpoint-every 10 --checkpoint-dir "$streamdir/full" \
  --trace "$streamdir/trace.jsonl" --json "$streamdir/metrics.full.json" \
  --quiet
python3 scripts/validate_bench_json.py "$streamdir/full/manifest.jsonl"
# Kill after epoch 25 — between the epoch-20 and epoch-30 checkpoints — then
# resume; the resumed run restarts from epoch 20 and must catch up exactly.
build/tools/soak_run --stream --epochs 40 --stream-seed 4242 \
  --checkpoint-every 10 --checkpoint-dir "$streamdir/cut" \
  --stop-after 25 --quiet
build/tools/soak_run --stream --epochs 40 --stream-seed 4242 \
  --checkpoint-every 10 --checkpoint-dir "$streamdir/cut" \
  --resume --json "$streamdir/metrics.resumed.json" --quiet
cmp "$streamdir/metrics.full.json" "$streamdir/metrics.resumed.json"
cmp "$streamdir/full/ckpt-000040.bdpc" "$streamdir/cut/ckpt-000040.bdpc"
# Replay the recorded trace; the verdict timeline must hash to the same
# value the recording run reported.
expected_hash=$(python3 -c "import json, sys
print(json.load(open(sys.argv[1]))['verdict_hash'])" \
  "$streamdir/metrics.full.json")
build/tools/replay_serve --trace "$streamdir/trace.jsonl" \
  --stream-seed 4242 --expect-hash "$expected_hash" \
  > "$streamdir/replay.log"
# Flood leg: 600 one-second epochs (10 sim-minutes) of continuous d_req
# ingest; the memory watermark must hold with zero table-growth violations.
build/tools/soak_run --stream --epochs 600 --stream-seed 7 --quiet \
  --json "$streamdir/metrics.flood.json" | tee -a "$soaklog"

echo "==== megacity kill/resume smoke (sharded checkpoint crash consistency) ===="
# The fault-tolerance gate for the sharded corridor: an 8-segment run killed
# mid-run (between checkpoints) and resumed from its last complete BDPC
# checkpoint must reproduce the uninterrupted run's deterministic surfaces
# (metrics JSON + canonical log, dumped into one file per run) AND its final
# checkpoint, byte for byte. The chaos leg repeats the cycle at hashed kill
# epochs. megacity/replay.txt records the deterministic replay recipe and is
# uploaded with the soak artifacts on failure.
megadir="$out/megacity"
rm -rf "$megadir" && mkdir -p "$megadir"
mega_args=(--megacity --segments 8 --vehicles 800 --shards 4 --epochs 6
           --megacity-seed 4242 --checkpoint-every 2 --jobs "$jobs" --quiet)
echo "replay: soak_run --megacity --megacity-seed 4242 --segments 8 \
--vehicles 800 --shards 4 --epochs 6 --checkpoint-every 2" \
  > "$megadir/replay.txt"
build/tools/soak_run "${mega_args[@]}" --checkpoint-dir "$megadir/full" \
  --surfaces-out "$megadir/surfaces.full.txt"
python3 scripts/validate_bench_json.py "$megadir/full/manifest.jsonl"
# Kill after epoch 3 — between the epoch-2 and epoch-4 checkpoints — then
# resume; the resumed run restarts from epoch 2 and must catch up exactly.
build/tools/soak_run "${mega_args[@]}" --checkpoint-dir "$megadir/cut" \
  --stop-after 3
build/tools/soak_run "${mega_args[@]}" --checkpoint-dir "$megadir/cut" \
  --resume --surfaces-out "$megadir/surfaces.resumed.txt"
cmp "$megadir/surfaces.full.txt" "$megadir/surfaces.resumed.txt"
cmp "$megadir/full/ckpt-000006.bdpc" "$megadir/cut/ckpt-000006.bdpc"
# Chaos leg: scripted kill/resume cycles at hashed epochs, each byte-compared
# against an uninterrupted reference run in-process.
build/tools/soak_run "${mega_args[@]}" --checkpoint-dir "$megadir/chaos" \
  --chaos-kills 3 | tee -a "$soaklog"

echo "CI: both configurations green, bench + campaign + soak + stream-soak + megacity validated."
