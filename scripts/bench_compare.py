#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files (schema v2) and gate on throughput.

Stdlib only — CI runs this after the bench smoke pass against a committed
baseline:

    python3 scripts/bench_compare.py bench/baselines/BENCH_micro_substrates.json \
        build/bench-out/BENCH_micro_substrates.json [--max-regression 75]

Prints the wall-clock / throughput delta plus every deterministic metric
(counter, gauge, histogram count/sum) that differs between the two files,
then exits nonzero iff the candidate's frames_per_second dropped more than
--max-regression percent below the baseline, (when the baseline records
throughput.allocations_per_frame) the candidate's allocations_per_frame
rose more than --max-alloc-increase above the baseline, or (when the
baseline records a fault_tolerance sidecar) the candidate's checkpoint time
exceeds --max-checkpoint-overhead percent of that leg's wall clock.

Throughput and allocations gate; nothing else does. The deterministic
`metrics` subtree is expected to be identical when both files come from the
same code and workload; differences are printed as context for a human, not
failed on, because the baseline is refreshed deliberately whenever a bench's
workload changes. Wall-clock noise between CI runners is why the default
throughput tolerance is generous (75 %): that gate exists to catch
catastrophic slowdowns — losing the spatial grid, an accidental O(n²) — not
single-digit jitter. The allocation gate is tight (default 0.05
allocs/frame) because allocation counts are deterministic, not wall-clock
noise: a steady-state malloc sneaking back into the frame path is exactly
the regression it exists to catch.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    try:
        doc = json.loads(path.read_text())
    except OSError as error:
        raise SystemExit(f"{path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not valid JSON: {error}")
    for key in ("bench", "schema_version", "wall_clock_seconds",
                "throughput", "metrics"):
        if key not in doc:
            raise SystemExit(f"{path}: missing top-level key {key!r} "
                             "(run validate_bench_json.py first)")
    return doc


def fmt(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def flatten_metrics(metrics):
    """One comparable scalar per line: counters, gauges, histogram count/sum."""
    flat = {}
    for name, value in metrics.get("counters", {}).items():
        flat[f"counter {name}"] = value
    for name, value in metrics.get("gauges", {}).items():
        flat[f"gauge {name}"] = value
    for name, hist in metrics.get("histograms", {}).items():
        flat[f"histogram {name}.count"] = hist.get("count")
        flat[f"histogram {name}.sum"] = hist.get("sum")
    return flat


def print_metric_deltas(baseline, candidate):
    base = flatten_metrics(baseline["metrics"])
    cand = flatten_metrics(candidate["metrics"])
    changed = []
    for name in sorted(set(base) | set(cand)):
        b, c = base.get(name), cand.get(name)
        if b != c:
            changed.append((name, b, c))
    if not changed:
        print("metrics: identical "
              f"({len(base)} comparable values)")
        return
    print(f"metrics: {len(changed)} difference(s) "
          "(informational — not gated):")
    for name, b, c in changed:
        print(f"  {name}: {fmt(b)} -> {fmt(c)}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH json files; fail on throughput regression.")
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument("--max-regression", type=float, default=75.0,
                        metavar="PCT",
                        help="maximum tolerated frames_per_second drop below "
                             "the baseline, in percent (default: %(default)s)")
    parser.add_argument("--max-alloc-increase", type=float, default=0.05,
                        metavar="ALLOCS",
                        help="maximum tolerated allocations_per_frame rise "
                             "above the baseline, absolute (default: "
                             "%(default)s); only gates when the baseline "
                             "records the field")
    parser.add_argument("--max-checkpoint-overhead", type=float, default=5.0,
                        metavar="PCT",
                        help="maximum tolerated fault_tolerance checkpoint "
                             "time as a percentage of that leg's wall clock "
                             "(default: %(default)s); only gates when the "
                             "baseline records a fault_tolerance sidecar")
    args = parser.parse_args(argv[1:])

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    if baseline["bench"] != candidate["bench"]:
        raise SystemExit(f"bench name mismatch: {baseline['bench']!r} vs "
                         f"{candidate['bench']!r}")
    if baseline["schema_version"] != candidate["schema_version"]:
        raise SystemExit(f"schema_version mismatch: "
                         f"{baseline['schema_version']} vs "
                         f"{candidate['schema_version']}")

    print(f"bench: {baseline['bench']}")
    b_wall = baseline["wall_clock_seconds"]
    c_wall = candidate["wall_clock_seconds"]
    print(f"wall_clock_seconds: {b_wall:.3f} -> {c_wall:.3f}")

    b_fps = baseline["throughput"]["frames_per_second"]
    c_fps = candidate["throughput"]["frames_per_second"]
    b_frames = baseline["throughput"]["frames_delivered"]
    c_frames = candidate["throughput"]["frames_delivered"]
    print(f"frames_delivered: {b_frames} -> {c_frames}")
    print(f"frames_per_second: {b_fps:.1f} -> {c_fps:.1f}")

    print_metric_deltas(baseline, candidate)

    if "sharding" in baseline and "sharding" in candidate:
        b_sh, c_sh = baseline["sharding"], candidate["sharding"]
        print(f"sharding.speedup: {b_sh['speedup']:.2f} -> "
              f"{c_sh['speedup']:.2f} (informational — CI gates the "
              "committed baseline's speedup separately)")
        print(f"sharding.balance_ratio: {b_sh['balance_ratio']:.3f} -> "
              f"{c_sh['balance_ratio']:.3f}")

    failed = False

    b_apf = baseline["throughput"].get("allocations_per_frame")
    c_apf = candidate["throughput"].get("allocations_per_frame")
    if b_apf is None:
        pass  # baseline never measured allocations; nothing to hold
    elif c_apf is None:
        print("FAIL: baseline records allocations_per_frame "
              f"({b_apf:.4f}) but the candidate does not — the alloc hook "
              "measurement was lost", file=sys.stderr)
        failed = True
    else:
        print(f"allocations_per_frame: {b_apf:.4f} -> {c_apf:.4f} "
              f"(tolerance: +{args.max_alloc_increase:.4f})")
        if c_apf - b_apf > args.max_alloc_increase:
            print(f"FAIL: allocations_per_frame rose {c_apf - b_apf:.4f} "
                  f"(> {args.max_alloc_increase:.4f} allowed) — a "
                  "steady-state allocation crept back into the frame path",
                  file=sys.stderr)
            failed = True
        else:
            print("allocation gate: OK")

    b_ft = baseline.get("fault_tolerance")
    c_ft = candidate.get("fault_tolerance")
    if b_ft is None:
        pass  # baseline predates the fault-tolerance leg; nothing to hold
    elif c_ft is None:
        print("FAIL: baseline records a fault_tolerance sidecar but the "
              "candidate does not — the crash-and-recover leg was lost",
              file=sys.stderr)
        failed = True
    else:
        ckpt = c_ft["checkpoint_seconds"]
        wall = c_ft["wall_clock_seconds"]
        budget = args.max_checkpoint_overhead / 100.0 * wall
        pct = ckpt / wall * 100.0 if wall > 0 else 0.0
        print(f"fault_tolerance.checkpoint_seconds: "
              f"{b_ft['checkpoint_seconds']:.4f} -> {ckpt:.4f} "
              f"({pct:.2f}% of the leg's wall clock; "
              f"tolerance: {args.max_checkpoint_overhead:.1f}%)")
        print(f"fault_tolerance.envelopes_replayed: "
              f"{b_ft['envelopes_replayed']} -> {c_ft['envelopes_replayed']}")
        if wall > 0 and ckpt > budget:
            print(f"FAIL: checkpointing cost {pct:.2f}% of the "
                  "fault-tolerance leg's wall clock "
                  f"(> {args.max_checkpoint_overhead:.1f}% allowed) — "
                  "snapshots are no longer cheap enough to take every other "
                  "epoch", file=sys.stderr)
            failed = True
        else:
            print("checkpoint overhead gate: OK")

    if b_fps <= 0:
        print("throughput gate: skipped (baseline frames_per_second is 0)")
        return 1 if failed else 0

    drop_pct = (b_fps - c_fps) / b_fps * 100.0
    print(f"throughput delta: {-drop_pct:+.1f}% "
          f"(tolerance: -{args.max_regression:.1f}%)")
    if drop_pct > args.max_regression:
        print(f"FAIL: frames_per_second regressed {drop_pct:.1f}% "
              f"(> {args.max_regression:.1f}% allowed)", file=sys.stderr)
        failed = True
    else:
        print("throughput gate: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
