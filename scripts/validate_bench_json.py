#!/usr/bin/env python3
"""Validate BENCH_<name>.json files and campaign manifests.

Stdlib only — CI runs this straight after the bench smoke pass:

    python3 scripts/validate_bench_json.py bench-out/BENCH_*.json
    python3 scripts/validate_bench_json.py bench-out/smoke.manifest.jsonl

Arguments named exactly `manifest.jsonl` are validated as stream-soak
checkpoint manifests (src/soak/stream_soak.hpp): one flat JSON line per
checkpoint, `{"epoch": N, "file": "ckpt-NNNNNN.bdpc", "bytes": B,
"crc32": C, "seed": S}`. Each referenced file must exist next to the
manifest, match the recorded size and CRC-32 (binascii.crc32 of the raw
bytes), and open with the checkpoint envelope header (magic `BDPC`,
schema version 1). Epochs must be strictly increasing and the seed
constant — a manifest that fails any of these would break `--resume`.

Arguments ending in `.manifest.jsonl` are validated as campaign manifests
(src/campaign/manifest.hpp): a header line naming the campaign, its
experiment kind, seed, trials-per-treatment and treatment count, then one
flat JSON row per completed trial. Checked invariants: required keys,
strictly increasing trial ids, trial == treatment * trials + rep, one config
hash per treatment, and each row's seed matching the SplitMix64 derivation
contract seed = derive(derive(campaign_seed, hash_bits), rep).

Schema (src/obs/bench_json.hpp):

    {
      "bench": "<name>",
      "schema_version": 2,
      "wall_clock_seconds": <non-negative number>,
      "throughput": {
        "frames_delivered": <non-negative int>,
        "frames_per_second": <non-negative number>,
        "allocations_per_frame": <non-negative number, optional — present
                                  only when the bench linked the alloc hook
                                  and measured a steady-state span>
      },
      "metrics": {
        "counters":   {"<name>": <non-negative int>, ...},
        "gauges":     {"<name>": <number>, ...},
        "histograms": {"<name>": {"edges": [...], "counts": [...],
                                  "count": n, "sum": x,
                                  "min": x, "max": x}, ...}
      }
    }

Checked invariants: required keys, value types, strictly increasing
histogram edges, len(counts) == len(edges) + 1 (implicit overflow bucket),
sum(counts) == count, and frames_per_second consistent with
frames_delivered / wall_clock_seconds.

BENCH_megacity.json additionally carries a "sharding" sidecar (the
machine-dependent half of the sharded-corridor story) which is required for
that bench: positive shard counts, fps for both partitionings, speedup > 0,
busy_seconds with one non-negative entry per shard of run B, balance_ratio
in [0, 1], and identical == true — the byte-identity of shards=1 vs
shards=N is part of the schema, not just a test.

It also requires a "fault_tolerance" sidecar from the crash-and-recover
leg: non-negative checkpoint/wall seconds with checkpoint_seconds <=
wall_clock_seconds, checkpoints_written >= 1, shard_restarts == 1,
envelopes_replayed >= 1 (the supervisor actually replayed something),
crc_rejects == 0, and identical == true — a crashed-and-restarted shard
must converge to the same deterministic surfaces.
"""

import binascii
import json
import pathlib
import sys

SCHEMA_VERSION = 2


def fail(path, message):
    raise SystemExit(f"{path}: {message}")


def check_number(path, name, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{name}: expected a number, got {type(value).__name__}")


def check_histogram(path, name, hist):
    if not isinstance(hist, dict):
        fail(path, f"histogram {name}: expected an object")
    for key in ("edges", "counts", "count", "sum", "min", "max"):
        if key not in hist:
            fail(path, f"histogram {name}: missing key {key!r}")
    edges, counts = hist["edges"], hist["counts"]
    if not isinstance(edges, list) or not isinstance(counts, list):
        fail(path, f"histogram {name}: edges/counts must be arrays")
    for edge in edges:
        check_number(path, f"histogram {name} edge", edge)
    if any(b <= a for a, b in zip(edges, edges[1:])):
        fail(path, f"histogram {name}: edges not strictly increasing")
    if len(counts) != len(edges) + 1:
        fail(path, f"histogram {name}: expected {len(edges) + 1} buckets "
                   f"(edges + overflow), got {len(counts)}")
    for count in counts:
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            fail(path, f"histogram {name}: counts must be non-negative ints")
    if sum(counts) != hist["count"]:
        fail(path, f"histogram {name}: sum(counts) {sum(counts)} != "
                   f"count {hist['count']}")


def check_throughput(path, doc):
    wall = doc["wall_clock_seconds"]
    check_number(path, "wall_clock_seconds", wall)
    if wall < 0:
        fail(path, f"wall_clock_seconds must be non-negative, got {wall}")

    throughput = doc["throughput"]
    if not isinstance(throughput, dict):
        fail(path, "'throughput' must be an object")
    for key in ("frames_delivered", "frames_per_second"):
        if key not in throughput:
            fail(path, f"throughput missing key {key!r}")
    frames = throughput["frames_delivered"]
    if not isinstance(frames, int) or isinstance(frames, bool) or frames < 0:
        fail(path, "throughput.frames_delivered: expected a non-negative int")
    fps = throughput["frames_per_second"]
    check_number(path, "throughput.frames_per_second", fps)
    if fps < 0:
        fail(path, f"frames_per_second must be non-negative, got {fps}")
    if wall > 0:
        expected = frames / wall
        tolerance = max(1e-6, 1e-9 * expected)
        if abs(fps - expected) > tolerance:
            fail(path, f"frames_per_second {fps} inconsistent with "
                       f"frames_delivered/wall_clock_seconds ({expected})")
    elif fps != 0:
        fail(path, "frames_per_second must be 0 when wall_clock_seconds is 0")

    if "allocations_per_frame" in throughput:
        apf = throughput["allocations_per_frame"]
        check_number(path, "throughput.allocations_per_frame", apf)
        if apf < 0:
            fail(path, "throughput.allocations_per_frame must be "
                       f"non-negative, got {apf}")


SHARDING_KEYS = ("shards_a", "shards_b", "jobs", "segments", "vehicles",
                 "epochs", "fps_shards_a", "fps_shards_b", "speedup",
                 "balance_ratio", "busy_seconds", "envelopes_exchanged",
                 "identical")


def check_sharding(path, doc):
    if "sharding" not in doc:
        fail(path, "bench megacity requires a 'sharding' sidecar")
    sharding = doc["sharding"]
    if not isinstance(sharding, dict):
        fail(path, "'sharding' must be an object")
    for key in SHARDING_KEYS:
        if key not in sharding:
            fail(path, f"sharding missing key {key!r}")
    for key in ("shards_a", "shards_b", "jobs", "segments", "vehicles",
                "epochs", "envelopes_exchanged"):
        if (not isinstance(sharding[key], int) or isinstance(sharding[key], bool)
                or sharding[key] < 0):
            fail(path, f"sharding.{key}: expected a non-negative int")
    for key in ("shards_a", "shards_b", "jobs", "segments", "vehicles",
                "epochs"):
        if sharding[key] < 1:
            fail(path, f"sharding.{key} must be positive")
    for key in ("fps_shards_a", "fps_shards_b", "speedup", "balance_ratio"):
        check_number(path, f"sharding.{key}", sharding[key])
        if sharding[key] < 0:
            fail(path, f"sharding.{key} must be non-negative")
    if sharding["speedup"] <= 0:
        fail(path, "sharding.speedup must be > 0 (both runs completed)")
    if not 0 <= sharding["balance_ratio"] <= 1:
        fail(path, f"sharding.balance_ratio must be in [0, 1], got "
                   f"{sharding['balance_ratio']}")
    busy = sharding["busy_seconds"]
    if not isinstance(busy, list) or len(busy) != sharding["shards_b"]:
        fail(path, f"sharding.busy_seconds must be an array of "
                   f"{sharding['shards_b']} entries (one per shard of run B)")
    for entry in busy:
        check_number(path, "sharding.busy_seconds entry", entry)
        if entry < 0:
            fail(path, "sharding.busy_seconds entries must be non-negative")
    if sharding["identical"] is not True:
        fail(path, "sharding.identical must be true — shards_a and shards_b "
                   "produced different deterministic surfaces")


FAULT_TOLERANCE_KEYS = ("checkpoint_seconds", "wall_clock_seconds",
                        "checkpoints_written", "checkpoint_bytes",
                        "crash_epoch", "shard_restarts", "recovery_epochs",
                        "envelopes_replayed", "crc_rejects", "identical")


def check_fault_tolerance(path, doc):
    if "fault_tolerance" not in doc:
        fail(path, "bench megacity requires a 'fault_tolerance' sidecar")
    ft = doc["fault_tolerance"]
    if not isinstance(ft, dict):
        fail(path, "'fault_tolerance' must be an object")
    for key in FAULT_TOLERANCE_KEYS:
        if key not in ft:
            fail(path, f"fault_tolerance missing key {key!r}")
    for key in ("checkpoints_written", "checkpoint_bytes", "crash_epoch",
                "shard_restarts", "recovery_epochs", "envelopes_replayed",
                "crc_rejects"):
        if (not isinstance(ft[key], int) or isinstance(ft[key], bool)
                or ft[key] < 0):
            fail(path, f"fault_tolerance.{key}: expected a non-negative int")
    for key in ("checkpoint_seconds", "wall_clock_seconds"):
        check_number(path, f"fault_tolerance.{key}", ft[key])
        if ft[key] < 0:
            fail(path, f"fault_tolerance.{key} must be non-negative")
    if ft["checkpoint_seconds"] > ft["wall_clock_seconds"]:
        fail(path, "fault_tolerance.checkpoint_seconds exceeds the leg's "
                   "wall_clock_seconds")
    if ft["checkpoints_written"] < 1:
        fail(path, "fault_tolerance.checkpoints_written must be >= 1")
    if ft["shard_restarts"] != 1:
        fail(path, "fault_tolerance.shard_restarts must be exactly 1 (one "
                   "scripted crash, one supervisor restart)")
    if ft["envelopes_replayed"] < 1:
        fail(path, "fault_tolerance.envelopes_replayed must be >= 1 — the "
                   "restart must actually replay missed envelopes")
    if ft["crc_rejects"] != 0:
        fail(path, "fault_tolerance.crc_rejects must be 0 on a healthy run")
    if ft["identical"] is not True:
        fail(path, "fault_tolerance.identical must be true — the recovered "
                   "run produced different deterministic surfaces")


def validate(path):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        fail(path, f"not valid JSON: {error}")

    for key in ("bench", "schema_version", "wall_clock_seconds",
                "throughput", "metrics"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string")
    if path.name != f"BENCH_{doc['bench']}.json":
        fail(path, f"file name does not match bench name {doc['bench']!r}")
    if doc["schema_version"] != SCHEMA_VERSION:
        fail(path, f"schema_version {doc['schema_version']} != "
                   f"{SCHEMA_VERSION}")

    check_throughput(path, doc)
    if doc["bench"] == "megacity":
        check_sharding(path, doc)
        check_fault_tolerance(path, doc)

    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail(path, "'metrics' must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            fail(path, f"metrics.{section} missing or not an object")

    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(path, f"counter {name}: expected a non-negative int")
    for name, value in metrics["gauges"].items():
        check_number(path, f"gauge {name}", value)
    for name, hist in metrics["histograms"].items():
        check_histogram(path, name, hist)

    total = sum(len(metrics[s]) for s in ("counters", "gauges", "histograms"))
    print(f"{path}: OK ({total} metrics, "
          f"{doc['throughput']['frames_delivered']} frames in "
          f"{doc['wall_clock_seconds']:.3f}s)")


# ------------------------------------------------- campaign manifests

MANIFEST_VERSION = 1
MASK64 = (1 << 64) - 1

MANIFEST_HEADER_KEYS = ("manifest", "manifest_version", "campaign",
                        "experiment", "seed", "trials", "treatments")
MANIFEST_ROW_KEYS = ("trial", "treatment", "rep", "seed", "config_hash",
                     "label", "attack_launched", "confirmed_on_attacker",
                     "false_positive", "detection_packets", "verdict",
                     "frames_delivered", "telemetry")


def derive_trial_seed(campaign_seed, index):
    """Mirror of sim::deriveTrialSeed (SplitMix64 jump + finalizer)."""
    z = (campaign_seed + (index + 1) * 0x9E3779B97F4A7C15) & MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)


def check_uint(path, name, value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(path, f"{name}: expected a non-negative int")


def validate_manifest(path):
    lines = path.read_text().splitlines()
    if not lines:
        fail(path, "empty manifest")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        fail(path, f"header is not valid JSON: {error}")
    for key in MANIFEST_HEADER_KEYS:
        if key not in header:
            fail(path, f"header missing key {key!r}")
    if header["manifest"] != "campaign":
        fail(path, f"not a campaign manifest: {header['manifest']!r}")
    if header["manifest_version"] != MANIFEST_VERSION:
        fail(path, f"manifest_version {header['manifest_version']} != "
                   f"{MANIFEST_VERSION}")
    for key in ("seed", "trials", "treatments"):
        check_uint(path, f"header {key}", header[key])
    trials = header["trials"]
    if trials < 1:
        fail(path, "header trials must be >= 1")
    total = header["treatments"] * trials

    last_trial = -1
    hash_per_treatment = {}
    for line_no, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"line {line_no}: not valid JSON: {error}")
        for key in MANIFEST_ROW_KEYS:
            if key not in row:
                fail(path, f"line {line_no}: missing key {key!r}")
        for key in ("trial", "treatment", "rep", "seed", "detection_packets",
                    "frames_delivered", "attack_launched",
                    "confirmed_on_attacker", "false_positive"):
            check_uint(path, f"line {line_no} {key}", row[key])

        trial = row["trial"]
        if trial <= last_trial:
            fail(path, f"line {line_no}: trial ids not strictly increasing "
                       f"({trial} after {last_trial})")
        last_trial = trial
        if trial >= total:
            fail(path, f"line {line_no}: trial {trial} out of range "
                       f"(matrix holds {total})")
        if row["treatment"] != trial // trials or row["rep"] != trial % trials:
            fail(path, f"line {line_no}: trial {trial} inconsistent with "
                       f"treatment {row['treatment']} / rep {row['rep']}")

        config_hash = row["config_hash"]
        if (not isinstance(config_hash, str) or len(config_hash) != 16
                or any(c not in "0123456789abcdef" for c in config_hash)):
            fail(path, f"line {line_no}: config_hash must be 16 lowercase "
                       f"hex digits")
        known = hash_per_treatment.setdefault(row["treatment"], config_hash)
        if known != config_hash:
            fail(path, f"line {line_no}: treatment {row['treatment']} has "
                       f"conflicting config hashes {known} / {config_hash}")

        expected_seed = derive_trial_seed(
            derive_trial_seed(header["seed"], int(config_hash, 16)),
            row["rep"])
        if row["seed"] != expected_seed:
            fail(path, f"line {line_no}: seed {row['seed']} violates the "
                       f"derivation contract (expected {expected_seed})")

        try:
            telemetry = json.loads(row["telemetry"])
        except json.JSONDecodeError as error:
            fail(path, f"line {line_no}: telemetry is not valid JSON: "
                       f"{error}")
        for section in ("counters", "gauges", "histograms"):
            if section not in telemetry:
                fail(path, f"line {line_no}: telemetry missing {section!r}")

    done = last_trial + 1
    print(f"{path}: OK (campaign {header['campaign']!r}, "
          f"{len(hash_per_treatment)}/{header['treatments']} treatments seen, "
          f"{done if done == total else f'{done} of {total}'} trials)")


CHECKPOINT_MAGIC = b"BDPC"
CHECKPOINT_VERSION = 1
CHECKPOINT_KEYS = ("epoch", "file", "bytes", "crc32", "seed")


def validate_checkpoint_manifest(path):
    lines = path.read_text().splitlines()
    if not lines:
        fail(path, "empty checkpoint manifest")
    last_epoch = -1
    seed = None
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"line {line_no}: not valid JSON: {error}")
        for key in CHECKPOINT_KEYS:
            if key not in entry:
                fail(path, f"line {line_no}: missing key {key!r}")
        for key in ("epoch", "bytes", "crc32", "seed"):
            check_uint(path, f"line {line_no} {key}", entry[key])
        if not isinstance(entry["file"], str):
            fail(path, f"line {line_no}: file must be a string")

        epoch = entry["epoch"]
        if epoch <= last_epoch:
            fail(path, f"line {line_no}: epochs not strictly increasing "
                       f"({epoch} after {last_epoch})")
        last_epoch = epoch
        if entry["file"] != f"ckpt-{epoch:06d}.bdpc":
            fail(path, f"line {line_no}: file {entry['file']!r} does not "
                       f"match the ckpt-NNNNNN.bdpc naming for epoch {epoch}")
        if seed is None:
            seed = entry["seed"]
        elif entry["seed"] != seed:
            fail(path, f"line {line_no}: seed {entry['seed']} != {seed} "
                       f"from the first entry")

        ckpt = path.parent / entry["file"]
        if not ckpt.is_file():
            fail(path, f"line {line_no}: {entry['file']} is missing")
        data = ckpt.read_bytes()
        if len(data) != entry["bytes"]:
            fail(path, f"line {line_no}: {entry['file']} is {len(data)} "
                       f"bytes, manifest says {entry['bytes']}")
        if binascii.crc32(data) != entry["crc32"]:
            fail(path, f"line {line_no}: {entry['file']} CRC "
                       f"{binascii.crc32(data)} != manifest "
                       f"{entry['crc32']}")
        if data[:4] != CHECKPOINT_MAGIC:
            fail(path, f"line {line_no}: {entry['file']} lacks the "
                       f"checkpoint magic {CHECKPOINT_MAGIC!r}")
        if int.from_bytes(data[4:6], "big") != CHECKPOINT_VERSION:
            fail(path, f"line {line_no}: {entry['file']} schema version "
                       f"{int.from_bytes(data[4:6], 'big')} != "
                       f"{CHECKPOINT_VERSION}")

    if last_epoch < 0:
        fail(path, "checkpoint manifest holds no entries")
    count = sum(1 for line in lines if line.strip())
    print(f"{path}: OK (checkpoint manifest, {count} checkpoints verified, "
          f"last epoch {last_epoch}, seed {seed})")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(
            "usage: validate_bench_json.py "
            "[BENCH_*.json | *.manifest.jsonl | manifest.jsonl] ...")
    for arg in argv[1:]:
        path = pathlib.Path(arg)
        if path.name == "manifest.jsonl":
            validate_checkpoint_manifest(path)
        elif path.name.endswith(".manifest.jsonl"):
            validate_manifest(path)
        else:
            validate(path)


if __name__ == "__main__":
    main(sys.argv)
