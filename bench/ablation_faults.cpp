// Ablation F — detection under infrastructure faults.
//
// The paper's evaluation assumes perfect infrastructure; this ablation asks
// what the protocol keeps delivering when it degrades, and what the
// robustness hardening (d_req retransmits with capped backoff, CH failover
// via JREP-advertised neighbors, degraded probe adoption, local quarantine)
// buys back:
//
//   1. burst loss sweep — Gilbert–Elliott channels of increasing stationary
//      loss; detection rate / false positives / PDR / detection latency per
//      intensity, hardening enabled throughout.
//   2. RSU crash + failover — the source's own cluster head dies right
//      before the report. Without failover the d_req has no recipient and
//      detection collapses; with failover the vehicle re-homes to the
//      advertised neighbor CH and keeps retrying until it is in range.
//   3. zero-CH quarantine — every RSU dark from t = 0; the verifier degrades
//      to a vehicle-local blacklist so the attacker is still isolated at the
//      reporting vehicle.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/telemetry.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace blackdp;
using scenario::AttackType;
using scenario::HighwayScenario;
using scenario::ScenarioConfig;

constexpr std::uint32_t kPacketsPerTrial = 100;

ScenarioConfig baseConfig(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.attack = AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;
  return config;
}

void enableHardening(ScenarioConfig& config) {
  config.chFailover = true;
  config.verifier.dreqRetries = 8;
  config.verifier.responseTimeout = sim::Duration::seconds(40);
  config.detector.stageRetries = 2;
}

/// Milliseconds to the first confirmed session against the real attacker;
/// negative when no confirmation happened.
double confirmationLatencyMs(HighwayScenario& world) {
  double best = -1.0;
  for (const auto& session : world.detectionSummary().sessions) {
    const bool confirmed = session.verdict == core::Verdict::kSingleBlackHole ||
                           session.verdict ==
                               core::Verdict::kCooperativeBlackHole;
    if (!confirmed || !world.isAttackerPseudonym(session.suspect)) continue;
    const double ms =
        static_cast<double>(session.latency().us()) / 1'000.0;
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

struct TrialResult {
  bool detected{false};
  bool falsePositive{false};
  double pdr{0.0};
  double latencyMs{-1.0};
};

TrialResult faultTrial(ScenarioConfig config,
                       obs::Snapshot* worldMetrics = nullptr) {
  HighwayScenario world(std::move(config));
  (void)world.runVerification();
  TrialResult r;
  const auto summary = world.detectionSummary();
  r.detected = summary.confirmedOnAttacker;
  r.falsePositive = summary.falsePositive;
  r.latencyMs = confirmationLatencyMs(world);
  r.pdr = world.sendDataBurst(kPacketsPerTrial).pdr();
  if (worldMetrics) {
    obs::MetricsRegistry local;
    scenario::collectWorldMetrics(local, world);
    *worldMetrics = local.snapshot();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;
  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 10;

  std::cout << "Ablation F — detection under infrastructure faults (" << trials
            << " trials per cell, " << runner.jobs() << " jobs)\n\n";

  // ---- 1. burst-loss intensity sweep --------------------------------------
  struct Intensity {
    const char* label;
    fault::GilbertElliott channel;
  };
  const std::vector<Intensity> intensities = {
      {"none", {0.0, 1.0, 0.0, 0.0}},
      {"light", {0.02, 0.20, 0.0, 0.9}},
      {"medium", {0.05, 0.15, 0.0, 0.9}},
      {"heavy", {0.10, 0.10, 0.0, 0.9}},
  };

  obs::MetricsRegistry registry;

  // Flatten (intensity × trial); each task carries its world metrics out as
  // a snapshot so the fold below stays in submission order.
  struct BurstOutcome {
    TrialResult result;
    obs::Snapshot world;
  };
  const std::vector<BurstOutcome> burstOutcomes = runner.map<BurstOutcome>(
      intensities.size() * trials, [&](std::size_t i) {
        const Intensity& intensity = intensities[i / trials];
        ScenarioConfig config =
            baseConfig(7000 + static_cast<std::uint64_t>(i % trials));
        enableHardening(config);
        if (intensity.channel.meanLoss() > 0.0) {
          fault::BurstLossEvent burst;
          burst.channel = intensity.channel;
          config.faults.burstLoss.push_back(burst);
        }
        BurstOutcome outcome;
        outcome.result = faultTrial(std::move(config), &outcome.world);
        return outcome;
      });

  Table sweep({"Burst loss", "Mean loss", "Detection", "FP", "PDR",
               "Latency (ms)"});
  metrics::RunningStat detectNone, detectHeavy;
  for (std::size_t cell = 0; cell < intensities.size(); ++cell) {
    const Intensity& intensity = intensities[cell];
    metrics::RunningStat detected, falsePos, pdr, latency;
    for (std::uint32_t t = 0; t < trials; ++t) {
      const BurstOutcome& outcome = burstOutcomes[cell * trials + t];
      registry.merge(outcome.world);
      const TrialResult& r = outcome.result;
      detected.add(r.detected ? 1.0 : 0.0);
      falsePos.add(r.falsePositive ? 1.0 : 0.0);
      pdr.add(r.pdr);
      if (r.latencyMs >= 0.0) latency.add(r.latencyMs);
    }
    const std::string prefix = std::string{"faults.burst."} + intensity.label;
    obs::addRunningStat(registry, prefix + ".detected", detected);
    obs::addRunningStat(registry, prefix + ".pdr", pdr);
    obs::addRunningStat(registry, prefix + ".latency_ms", latency);
    sweep.addRow({intensity.label,
                  Table::percent(intensity.channel.meanLoss()),
                  Table::percent(detected.mean()),
                  Table::percent(falsePos.mean()), Table::percent(pdr.mean()),
                  latency.count() > 0 ? Table::num(latency.mean(), 1)
                                      : std::string{"-"}});
    if (intensity.channel.meanLoss() <= 0.0) detectNone = detected;
    detectHeavy = detected;
  }
  sweep.print(std::cout);

  // ---- 2. RSU crash: failover vs. no failover -----------------------------
  // The source's own CH (cluster 1) dies at 600 ms — after the joins, before
  // the report. suspectCluster 2 stays alive, so once the d_req reaches any
  // CH the probing itself is unimpaired.
  const auto crashTrial = [](std::uint64_t seed, bool hardened) {
    ScenarioConfig config = baseConfig(seed);
    if (hardened) enableHardening(config);
    fault::RsuCrashEvent crash;
    crash.cluster = common::ClusterId{1};
    crash.at = sim::TimePoint::fromUs(600'000);
    config.faults.rsuCrashes.push_back(crash);
    return faultTrial(std::move(config));
  };

  struct CrashOutcome {
    TrialResult baseline;
    TrialResult hardened;
  };
  const std::vector<CrashOutcome> crashOutcomes =
      runner.map<CrashOutcome>(trials, [&](std::size_t t) {
        const std::uint64_t seed = 7100 + t;
        return CrashOutcome{crashTrial(seed, false), crashTrial(seed, true)};
      });

  metrics::RunningStat baselineDetect, failoverDetect, failoverLatency;
  for (const CrashOutcome& outcome : crashOutcomes) {
    baselineDetect.add(outcome.baseline.detected ? 1.0 : 0.0);
    failoverDetect.add(outcome.hardened.detected ? 1.0 : 0.0);
    if (outcome.hardened.latencyMs >= 0.0) {
      failoverLatency.add(outcome.hardened.latencyMs);
    }
  }
  obs::addRunningStat(registry, "faults.crash.no_failover.detected",
                      baselineDetect);
  obs::addRunningStat(registry, "faults.crash.failover.detected",
                      failoverDetect);
  obs::addRunningStat(registry, "faults.crash.failover.latency_ms",
                      failoverLatency);

  std::cout << "\nRSU 1 crashed at 600 ms (source's own CH):\n";
  Table crashTable({"Treatment", "Detection", "Latency (ms)"});
  crashTable.addRow({"no failover (seed protocol)",
                     Table::percent(baselineDetect.mean()), "-"});
  crashTable.addRow({"failover + d_req retries",
                     Table::percent(failoverDetect.mean()),
                     failoverLatency.count() > 0
                         ? Table::num(failoverLatency.mean(), 1)
                         : std::string{"-"}});
  crashTable.print(std::cout);

  // ---- 3. zero-CH local quarantine ----------------------------------------
  // int, not bool: vector<bool> packs bits, which would race across workers.
  const std::vector<int> isolatedTrials =
      runner.map<int>(trials, [](std::size_t t) {
        ScenarioConfig config = baseConfig(7200 + t);
        config.verifier.localQuarantine = true;
        for (std::uint32_t c = 1; c <= 10; ++c) {
          fault::RsuCrashEvent crash;
          crash.cluster = common::ClusterId{c};
          config.faults.rsuCrashes.push_back(crash);
        }
        HighwayScenario world(std::move(config));
        const auto report = world.runVerification();
        return report.outcome == core::Outcome::kLocallyQuarantined &&
               world.isAttackerPseudonym(report.suspect) &&
               world.source().membership->isBlacklisted(report.suspect);
      });
  metrics::RunningStat quarantined;
  for (const int isolated : isolatedTrials) {
    quarantined.add(isolated != 0 ? 1.0 : 0.0);
  }
  std::cout << "\nEvery RSU dark from t = 0: the source locally quarantined "
               "the attacker in "
            << Table::percent(quarantined.mean()) << " of trials.\n";
  obs::addRunningStat(registry, "faults.quarantine.isolated", quarantined);
  obs::writeBenchJson("ablation_faults", registry.snapshot(), timer.info());

  const bool ok = detectNone.mean() >= detectHeavy.mean() &&
                  detectNone.mean() > 0.8 &&
                  failoverDetect.mean() > baselineDetect.mean() &&
                  quarantined.mean() > 0.0;
  std::cout << (ok ? "\nshape check: PASS\n" : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
