// Table I reproduction: builds the paper's simulation configuration and
// prints the realised parameters plus derived properties that prove the
// configuration is honoured (cluster coverage, membership, connectivity).
#include <iostream>

#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/telemetry.hpp"

int main() {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  scenario::ScenarioConfig config;
  config.seed = 7;
  config.attack = scenario::AttackType::kNone;

  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::seconds(1));  // let the fleet join

  std::cout << "Table I — simulation parameters (paper vs. realised)\n\n";
  Table table({"Parameter", "Paper", "Realised"});
  table.addRow({"Vehicle speed", "50-90 km/h",
                Table::num(config.minSpeedKmh, 0) + "-" +
                    Table::num(config.maxSpeedKmh, 0) + " km/h"});
  table.addRow({"#Vehicles", "100", std::to_string(world.vehicles().size())});
  table.addRow({"#RSUs (CHs)", "10", std::to_string(world.rsus().size())});
  table.addRow({"Transmission range", "1000 m",
                Table::num(world.medium().config().transmissionRangeM, 0) +
                    " m"});
  table.addRow({"Highway length", "10 km",
                Table::num(world.highway().length() / 1000.0, 0) + " km"});
  table.addRow({"Highway width", "200 m",
                Table::num(world.highway().width(), 0) + " m"});
  table.addRow({"Cluster length", "1000 m",
                Table::num(world.highway().clusterLength(), 0) + " m"});
  table.print(std::cout);

  // Derived properties.
  std::size_t joined = 0;
  for (const auto& vehicle : world.vehicles()) {
    if (vehicle->membership->currentCluster()) ++joined;
  }
  std::size_t memberTotal = 0;
  std::cout << "\nDerived properties after 1 s of simulated time\n\n";
  Table derived({"Cluster", "RSU position", "Members"});
  for (const auto& rsu : world.rsus()) {
    const auto centre = world.highway().clusterCenter(rsu->cluster);
    memberTotal += rsu->head->memberCount();
    derived.addRow({std::to_string(rsu->cluster.value()),
                    Table::num(centre.x, 0) + " m",
                    std::to_string(rsu->head->memberCount())});
  }
  derived.print(std::cout);

  std::cout << "\nvehicles joined a cluster : " << joined << " / "
            << world.vehicles().size() << '\n';
  std::cout << "total CH member entries   : " << memberTotal << '\n';
  std::cout << "frames on the air so far  : "
            << world.medium().stats().framesSent << '\n';

  obs::MetricsRegistry registry;
  scenario::collectWorldMetrics(registry, world);
  registry.gauge("table1.vehicles_joined").set(static_cast<double>(joined));
  registry.gauge("table1.member_entries")
      .set(static_cast<double>(memberTotal));
  obs::writeBenchJson("table1_scenario", registry.snapshot(), timer.info());

  // The paper's coverage requirement: p = l / r RSUs cover the highway.
  const bool covered =
      world.rsus().size() ==
      static_cast<std::size_t>(world.highway().clusterCount());
  std::cout << "\ncoverage p = l/r          : "
            << (covered ? "satisfied" : "VIOLATED") << '\n';
  return covered && joined == world.vehicles().size() ? 0 : 1;
}
