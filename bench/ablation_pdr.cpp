// Ablation C — data-plane impact: packet delivery ratio (PDR) under attack,
// with and without BlackDP, plus the gray hole boundary case.
//
// Treatments (100 data packets per trial, averaged over trials):
//   honest            — no attacker, plain AODV            (upper bound)
//   blackhole/plain   — single black hole, NO defence: the source trusts
//                       the freshest RREP and sends into the sinkhole
//   blackhole/blackdp — same attack, BlackDP verification first: data only
//                       flows after the route is authenticated
//   grayhole/blackdp  — selective dropper with an honest control plane:
//                       commits no AODV violation, so BlackDP verifies the
//                       route and the gray hole degrades PDR anyway — the
//                       documented protocol boundary (future-work material:
//                       forwarding-observation schemes).
#include <cstdlib>
#include <iostream>

#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace blackdp;
using scenario::AttackType;
using scenario::HighwayScenario;
using scenario::ScenarioConfig;

constexpr std::uint32_t kPacketsPerTrial = 100;

ScenarioConfig baseConfig(std::uint64_t seed, AttackType attack) {
  ScenarioConfig config;
  config.seed = seed;
  config.attack = attack;
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;
  return config;
}

double honestTrial(std::uint64_t seed) {
  HighwayScenario world(baseConfig(seed, AttackType::kNone));
  (void)world.runVerification();
  return world.sendDataBurst(kPacketsPerTrial).pdr();
}

double blackholeNoDefenceTrial(std::uint64_t seed) {
  HighwayScenario world(baseConfig(seed, AttackType::kSingle));
  world.runFor(sim::Duration::milliseconds(500));
  // No verification: plain AODV route establishment, exactly what the
  // attack exploits.
  bool done = false;
  world.source().agent->findRoute(world.destination().address(),
                                  [&done](bool) { done = true; });
  world.runUntil([&] { return done; }, sim::Duration::seconds(10));
  return world.sendDataBurst(kPacketsPerTrial).pdr();
}

double blackholeBlackdpTrial(std::uint64_t seed) {
  HighwayScenario world(baseConfig(seed, AttackType::kSingle));
  (void)world.runVerification();  // detect + isolate first
  return world.sendDataBurst(kPacketsPerTrial).pdr();
}

double grayholeBlackdpTrial(std::uint64_t seed, double dropProbability) {
  HighwayScenario world(baseConfig(seed, AttackType::kNone));
  // A gray hole in every cluster along the path: some will sit on the
  // chosen route.
  attack::GrayHoleConfig gray;
  gray.dropProbability = dropProbability;
  gray.advertiseBoost = 5;  // mild attraction, under every threshold
  for (std::uint32_t c = 1; c <= 6; ++c) {
    world.spawnGrayHole(common::ClusterId{c}, gray);
  }
  (void)world.runVerification();
  return world.sendDataBurst(kPacketsPerTrial).pdr();
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;
  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 15;

  std::cout << "Ablation C — packet delivery ratio (" << trials
            << " trials x " << kPacketsPerTrial << " packets, "
            << runner.jobs() << " jobs)\n\n";

  // Flatten (trial × 4 treatments); every task owns one world, so the four
  // PDR streams fold back in the same order the serial loop produced.
  struct TrialPdr {
    double honest{0.0};
    double plain{0.0};
    double defended{0.0};
    double gray{0.0};
  };
  const std::vector<TrialPdr> pdrs =
      runner.map<TrialPdr>(trials, [](std::size_t i) {
        const std::uint64_t seed = 9000 + i;
        return TrialPdr{honestTrial(seed), blackholeNoDefenceTrial(seed),
                        blackholeBlackdpTrial(seed),
                        grayholeBlackdpTrial(seed, 0.5)};
      });

  metrics::RunningStat honest;
  metrics::RunningStat plain;
  metrics::RunningStat defended;
  metrics::RunningStat gray;
  for (const TrialPdr& pdr : pdrs) {
    honest.add(pdr.honest);
    plain.add(pdr.plain);
    defended.add(pdr.defended);
    gray.add(pdr.gray);
  }

  Table table({"Treatment", "Mean PDR", "Min", "Max"});
  const auto row = [&](const char* label, const metrics::RunningStat& s) {
    table.addRow({label, Table::percent(s.mean()), Table::percent(s.min()),
                  Table::percent(s.max())});
  };
  row("honest network, plain AODV", honest);
  row("black hole, plain AODV (no defence)", plain);
  row("black hole, BlackDP", defended);
  row("gray hole x6 (50% drop), BlackDP", gray);
  table.print(std::cout);

  obs::MetricsRegistry registry;
  obs::addRunningStat(registry, "pdr.honest", honest);
  obs::addRunningStat(registry, "pdr.blackhole_plain", plain);
  obs::addRunningStat(registry, "pdr.blackhole_blackdp", defended);
  obs::addRunningStat(registry, "pdr.grayhole_blackdp", gray);
  registry.gauge("pdr.blackdp_recovery")
      .set(defended.mean() - plain.mean());
  registry.gauge("pdr.grayhole_cost").set(honest.mean() - gray.mean());
  obs::writeBenchJson("ablation_pdr", registry.snapshot(), timer.info());

  std::cout << "\nBlackDP recovers the black hole's damage ("
            << Table::percent(plain.mean()) << " -> "
            << Table::percent(defended.mean())
            << "); the gray hole's honest control plane slips below the "
               "protocol's\ndetection premise and costs "
            << Table::percent(honest.mean() - gray.mean())
            << " of PDR — the documented boundary.\n";

  const bool ok = plain.mean() < 0.35 && defended.mean() > 0.85 &&
                  defended.mean() > plain.mean() + 0.4 &&
                  gray.mean() < defended.mean();
  std::cout << (ok ? "\nshape check: PASS\n" : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
