// Substrate micro-benchmarks: event-kernel throughput, wireless broadcast
// fan-out, AODV route-discovery latency, and full scenario construction.
#include <benchmark/benchmark.h>

#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/telemetry.hpp"

namespace {

using namespace blackdp;

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      simulator.schedule(sim::Duration::microseconds(i), [&counter] {
        ++counter;
      });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventThroughput);

/// One broadcast delivered to N in-range receivers.
void BM_BroadcastFanout(benchmark::State& state) {
  const auto receivers = static_cast<std::size_t>(state.range(0));

  struct CountingRadio final : net::Radio {
    mobility::Position where{};
    std::uint64_t frames{0};
    [[nodiscard]] mobility::Position radioPosition() const override {
      return where;
    }
    void onFrame(const net::Frame&) override { ++frames; }
  };

  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{1}};
  std::vector<CountingRadio> radios(receivers + 1);
  for (std::size_t i = 0; i <= receivers; ++i) {
    radios[i].where = mobility::Position{static_cast<double>(i), 0.0};
    medium.attach(common::NodeId{static_cast<std::uint32_t>(i + 1)},
                  radios[i]);
  }

  class Ping final : public net::Payload {
   public:
    [[nodiscard]] std::string_view typeName() const override { return "ping"; }
  };

  for (auto _ : state) {
    medium.send(common::NodeId{1},
                net::Frame{common::Address{1}, common::kBroadcastAddress,
                           net::makePayload<Ping>()});
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receivers));
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(100);

/// Full Table-I world construction (110 nodes, enrollment, joins).
void BM_ScenarioBuild(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = seed++;
    config.attack = scenario::AttackType::kNone;
    scenario::HighwayScenario world(config);
    world.runFor(sim::Duration::milliseconds(100));
    benchmark::DoNotOptimize(world.vehicles().size());
  }
}
BENCHMARK(BM_ScenarioBuild);

/// End-to-end AODV route discovery over ~8 km of highway, no attacker.
void BM_RouteDiscovery(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = seed++;
    config.attack = scenario::AttackType::kNone;
    scenario::HighwayScenario world(config);
    world.runFor(sim::Duration::milliseconds(500));
    bool done = false;
    world.source().agent->findRoute(world.destination().address(),
                                    [&done](bool) { done = true; });
    world.runUntil([&] { return done; }, sim::Duration::seconds(10));
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RouteDiscovery);

/// Full BlackDP verification + detection + isolation, single attacker.
void BM_FullDetectionTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = seed++;
    config.attack = scenario::AttackType::kSingle;
    config.attackerCluster = common::ClusterId{2};
    scenario::HighwayScenario world(config);
    benchmark::DoNotOptimize(world.runVerification());
  }
}
BENCHMARK(BM_FullDetectionTrial);

/// Deterministic companion workload for the BENCH JSON: one full detection
/// trial, folded through the shared telemetry path (traffic counters plus
/// per-stage latency histograms).
void writeTrialMetrics() {
  obs::MetricsRegistry registry;
  scenario::ScenarioConfig config;
  config.seed = 1;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  scenario::HighwayScenario world(config);
  (void)world.runVerification();
  scenario::collectWorldMetrics(registry, world);
  obs::writeBenchJson("micro_substrates", registry.snapshot());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeTrialMetrics();
  return 0;
}
