// Substrate micro-benchmarks: event-kernel throughput, wireless broadcast
// fan-out, AODV route-discovery latency, and full scenario construction.
#include <benchmark/benchmark.h>

#include "aodv/messages.hpp"
#include "common/address_registry.hpp"
#include "net/payload_arena.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/telemetry.hpp"

namespace {

using namespace blackdp;

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      simulator.schedule(sim::Duration::microseconds(i), [&counter] {
        ++counter;
      });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventThroughput);

/// One broadcast delivered to N in-range receivers.
void BM_BroadcastFanout(benchmark::State& state) {
  const auto receivers = static_cast<std::size_t>(state.range(0));

  struct CountingRadio final : net::Radio {
    mobility::Position where{};
    std::uint64_t frames{0};
    [[nodiscard]] mobility::Position radioPosition() const override {
      return where;
    }
    void onFrame(const net::Frame&) override { ++frames; }
  };

  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{1}};
  std::vector<CountingRadio> radios(receivers + 1);
  for (std::size_t i = 0; i <= receivers; ++i) {
    radios[i].where = mobility::Position{static_cast<double>(i), 0.0};
    medium.attach(common::NodeId{static_cast<std::uint32_t>(i + 1)},
                  radios[i]);
  }

  class Ping final : public net::Payload {
   public:
    [[nodiscard]] std::string_view typeName() const override { return "ping"; }
  };

  for (auto _ : state) {
    medium.send(common::NodeId{1},
                net::Frame{common::Address{1}, common::kBroadcastAddress,
                           net::makePayload<Ping>()});
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receivers));
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(100);

/// Broadcast over a sparse 500-node fleet (nodes scattered across a
/// 10 km × 10 km area, 250 m urban-DSRC range → about one in-range receiver
/// per send). Arg(1) toggles the spatial grid: 1 = grid (cell-neighborhood
/// candidate scan), 0 = linear scan over the whole fleet. The grid path is
/// where the tentpole ≥5× win over the pre-grid medium (per-send copy + sort
/// of the whole fleet) shows: both deliver to the same receivers in the same
/// order, the grid just skips the 99+% of the fleet that is out of range.
void BM_MediumSparseFleet(benchmark::State& state) {
  const auto fleet = static_cast<std::size_t>(state.range(0));
  const bool grid = state.range(1) != 0;

  struct CountingRadio final : net::Radio {
    mobility::Position where{};
    std::uint64_t frames{0};
    [[nodiscard]] mobility::Position radioPosition() const override {
      return where;
    }
    void onFrame(const net::Frame&) override { ++frames; }
  };

  net::MediumConfig config;
  config.transmissionRangeM = 250.0;
  config.spatialGrid = grid;
  sim::Simulator simulator;
  net::WirelessMedium medium{simulator, sim::Rng{1}, config};

  // Deterministic scatter over 10 km × 10 km.
  sim::Rng placement{7};
  std::vector<CountingRadio> radios(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    radios[i].where = mobility::Position{placement.uniformReal(0.0, 10'000.0),
                                         placement.uniformReal(0.0, 10'000.0)};
    medium.attach(common::NodeId{static_cast<std::uint32_t>(i + 1)},
                  radios[i]);
  }

  class Ping final : public net::Payload {
   public:
    [[nodiscard]] std::string_view typeName() const override { return "ping"; }
  };

  std::uint32_t origin = 0;
  for (auto _ : state) {
    origin = origin % static_cast<std::uint32_t>(fleet) + 1;
    medium.send(common::NodeId{origin},
                net::Frame{common::Address{origin}, common::kBroadcastAddress,
                           net::makePayload<Ping>()});
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["frames_delivered"] = benchmark::Counter(
      static_cast<double>(medium.stats().framesDelivered),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MediumSparseFleet)
    ->Args({500, 0})
    ->Args({500, 1})
    ->ArgNames({"fleet", "grid"});

/// Dense-id interning: the per-frame address → owner lookup pattern. The
/// registry is warm (every address already interned), so this times the
/// steady-state path — splitmix64 mix + one or two linear probes — that
/// replaced an unordered_map node walk in the medium and the AODV tables.
void BM_AddressIntern(benchmark::State& state) {
  const auto addresses = static_cast<std::uint64_t>(state.range(0));
  common::AddressRegistry registry;
  for (std::uint64_t i = 0; i < addresses; ++i) {
    registry.intern(common::Address{1000 + i * 131});
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint32_t id =
        registry.intern(common::Address{1000 + (i % addresses) * 131});
    benchmark::DoNotOptimize(id);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressIntern)->Arg(128)->Arg(4096);

/// The megacity attach storm: 10k vehicles joining a fresh medium, the
/// pattern CorridorShard construction + epoch-0 spawn produces. Arg toggles
/// WirelessMedium::reserve (which pre-sizes the node table and the
/// AddressRegistry/DenseKeyMap substrates) so the rehash-and-regrow cost the
/// reservation removes is measured, not assumed.
void BM_AttachStorm(benchmark::State& state) {
  constexpr std::size_t kFleet = 10'000;
  const bool reserve = state.range(0) != 0;

  struct NullRadio final : net::Radio {
    mobility::Position where{};
    [[nodiscard]] mobility::Position radioPosition() const override {
      return where;
    }
    void onFrame(const net::Frame&) override {}
  };

  std::vector<NullRadio> radios(kFleet);
  for (std::size_t i = 0; i < kFleet; ++i) {
    radios[i].where =
        mobility::Position{static_cast<double>(i % 1000), 0.0};
  }

  for (auto _ : state) {
    sim::Simulator simulator;
    net::WirelessMedium medium{simulator, sim::Rng{1}};
    if (reserve) medium.reserve(kFleet, kFleet);
    for (std::size_t i = 0; i < kFleet; ++i) {
      medium.attach(common::NodeId{static_cast<std::uint32_t>(i + 1)},
                    radios[i]);
      medium.bindAddress(common::Address{0x1'0000'0000ull + i},
                  common::NodeId{static_cast<std::uint32_t>(i + 1)});
    }
    benchmark::DoNotOptimize(medium.stats());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFleet));
}
BENCHMARK(BM_AttachStorm)->Arg(0)->Arg(1)->ArgName("reserve");

/// Payload pool recycling: allocate + release one RREQ per iteration. After
/// the first iteration the block comes from the thread-local free list, so
/// this times the zero-malloc steady state of every over-the-air message.
void BM_PayloadArena(benchmark::State& state) {
  for (auto _ : state) {
    auto rreq = net::makeMutablePayload<aodv::RouteRequest>();
    benchmark::DoNotOptimize(rreq.get());
  }
  state.SetItemsProcessed(state.iterations());
  const net::PayloadArena::Stats stats = net::PayloadArena::threadStats();
  state.counters["slab_refills"] =
      benchmark::Counter(static_cast<double>(stats.slabRefills));
}
BENCHMARK(BM_PayloadArena);

/// Full Table-I world construction (110 nodes, enrollment, joins).
void BM_ScenarioBuild(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = seed++;
    config.attack = scenario::AttackType::kNone;
    scenario::HighwayScenario world(config);
    world.runFor(sim::Duration::milliseconds(100));
    benchmark::DoNotOptimize(world.vehicles().size());
  }
}
BENCHMARK(BM_ScenarioBuild);

/// End-to-end AODV route discovery over ~8 km of highway, no attacker.
void BM_RouteDiscovery(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = seed++;
    config.attack = scenario::AttackType::kNone;
    scenario::HighwayScenario world(config);
    world.runFor(sim::Duration::milliseconds(500));
    bool done = false;
    world.source().agent->findRoute(world.destination().address(),
                                    [&done](bool) { done = true; });
    world.runUntil([&] { return done; }, sim::Duration::seconds(10));
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RouteDiscovery);

/// Full BlackDP verification + detection + isolation, single attacker.
void BM_FullDetectionTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = seed++;
    config.attack = scenario::AttackType::kSingle;
    config.attackerCluster = common::ClusterId{2};
    scenario::HighwayScenario world(config);
    benchmark::DoNotOptimize(world.runVerification());
  }
}
BENCHMARK(BM_FullDetectionTrial);

/// Deterministic companion workload for the BENCH JSON: one full detection
/// trial, folded through the shared telemetry path (traffic counters plus
/// per-stage latency histograms).
void writeTrialMetrics(const obs::BenchTimer& timer) {
  obs::MetricsRegistry registry;
  scenario::ScenarioConfig config;
  config.seed = 1;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  scenario::HighwayScenario world(config);
  (void)world.runVerification();
  scenario::collectWorldMetrics(registry, world);
  obs::writeBenchJson("micro_substrates", registry.snapshot(), timer.info());
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchTimer timer;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeTrialMetrics(timer);
  return 0;
}
