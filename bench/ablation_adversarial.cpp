// Ablation G — adversarial robustness.
//
// The paper's attacker answers every probe; its detector trusts every
// accuser. This ablation pits upgraded attackers against the hardened
// detector and checks that the defenses close the gaps without ever
// hurting an honest vehicle:
//
//   1. sophistication grid — {naive, selective} attacker × {naive,
//      hardened} detector. The selective black hole only forges replies
//      for destinations it has overheard, so the naive fake-destination
//      probe misses it; the hardened campaign's plausible-address and
//      inflated-sequence rounds must win the cell back.
//   2. accusation flooding — certified-but-compromised vehicles file
//      forged d_reqs against honest members. Rate limiting, replay
//      rejection, and the exoneration/demerit path must keep the
//      false-quarantine count at exactly zero and quarantine the liars,
//      with and without a real black hole hiding behind the noise.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace blackdp;
using scenario::AttackType;
using scenario::HighwayScenario;
using scenario::ScenarioConfig;

ScenarioConfig baseConfig(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.attackerCluster = common::ClusterId{2};
  // Isolate the probe-evasion axis: no renewal/flee behaviours.
  config.evasion.firstEvasiveCluster = 99;
  return config;
}

struct TrialResult {
  bool detected{false};
  bool falsePositive{false};
  std::uint64_t honestRevocations{0};
  std::uint64_t rateLimited{0};
  std::uint64_t replayed{0};
  std::uint64_t exonerations{0};
  std::uint64_t reportersQuarantined{0};
};

TrialResult adversarialTrial(ScenarioConfig config) {
  HighwayScenario world(std::move(config));
  // Two establishment rounds in every cell: the selective attacker sits out
  // the first discovery (its cache is cold) and strikes the rediscovery;
  // naive cells just verify twice.
  (void)world.runVerification(/*rounds=*/2);
  // Flooder campaigns and hardened multi-round probes outlive the
  // verification exchange; settle before grading.
  world.runFor(sim::Duration::seconds(15));
  TrialResult r;
  const auto summary = world.detectionSummary();
  r.detected = summary.confirmedOnAttacker;
  r.falsePositive = summary.falsePositive;
  r.honestRevocations = world.honestRevocations();
  for (const auto& rsu : world.rsus()) {
    const core::DetectorStats& stats = rsu->detector->stats();
    r.rateLimited += stats.dreqRateLimited;
    r.replayed += stats.dreqReplayed;
    r.exonerations += stats.exonerations;
    r.reportersQuarantined += stats.reportersQuarantined;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;
  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 10;

  std::cout << "Ablation G — adversarial robustness (" << trials
            << " trials per cell, " << runner.jobs() << " jobs)\n\n";

  obs::MetricsRegistry registry;

  // ---- 1. attacker sophistication × detector hardening --------------------
  struct Cell {
    const char* attackerLabel;
    const char* detectorLabel;
    AttackType attack;
    bool hardened;
    const char* key;
  };
  const std::vector<Cell> cells = {
      {"naive", "naive", AttackType::kSingle, false, "naive.naive"},
      {"selective", "naive", AttackType::kSelective, false, "naive.selective"},
      {"naive", "hardened", AttackType::kSingle, true, "hardened.naive"},
      {"selective", "hardened", AttackType::kSelective, true,
       "hardened.selective"},
  };

  const std::vector<TrialResult> gridOutcomes = runner.map<TrialResult>(
      cells.size() * trials, [&](std::size_t i) {
        const Cell& cell = cells[i / trials];
        ScenarioConfig config =
            baseConfig(8000 + static_cast<std::uint64_t>(i % trials));
        config.attack = cell.attack;
        config.detector.hardening.enabled = cell.hardened;
        return adversarialTrial(std::move(config));
      });

  Table grid({"Detector", "Attacker", "Detection", "FP"});
  std::vector<metrics::RunningStat> cellDetect(cells.size());
  bool anyFalsePositive = false;
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    metrics::RunningStat falsePos;
    for (std::uint32_t t = 0; t < trials; ++t) {
      const TrialResult& r = gridOutcomes[cell * trials + t];
      cellDetect[cell].add(r.detected ? 1.0 : 0.0);
      falsePos.add(r.falsePositive ? 1.0 : 0.0);
      anyFalsePositive = anyFalsePositive || r.falsePositive;
    }
    const std::string prefix =
        std::string{"adversarial.grid."} + cells[cell].key;
    obs::addRunningStat(registry, prefix + ".detected", cellDetect[cell]);
    obs::addRunningStat(registry, prefix + ".fp", falsePos);
    grid.addRow({cells[cell].detectorLabel, cells[cell].attackerLabel,
                 Table::percent(cellDetect[cell].mean()),
                 Table::percent(falsePos.mean())});
  }
  grid.print(std::cout);
  const double naiveVsNaive = cellDetect[0].mean();
  const double naiveVsSelective = cellDetect[1].mean();
  const double hardenedVsSelective = cellDetect[3].mean();

  // ---- 2. accusation flooding ---------------------------------------------
  struct FloodRow {
    const char* label;
    AttackType attack;
    const char* key;
  };
  const std::vector<FloodRow> floodRows = {
      {"flood only", AttackType::kNone, "none"},
      {"flood + black hole", AttackType::kSingle, "single"},
  };

  const std::vector<TrialResult> floodOutcomes = runner.map<TrialResult>(
      floodRows.size() * trials, [&](std::size_t i) {
        const FloodRow& row = floodRows[i / trials];
        ScenarioConfig config =
            baseConfig(8500 + static_cast<std::uint64_t>(i % trials));
        config.attack = row.attack;
        config.detector.hardening.enabled = true;
        config.accusationFlooders = 2;
        config.flooder.start = sim::Duration::seconds(1);
        config.flooder.interval = sim::Duration::milliseconds(300);
        config.flooder.maxAccusations = 10;
        return adversarialTrial(std::move(config));
      });

  std::cout << "\n2 accusation flooders, hardened detector:\n";
  Table flood({"Treatment", "Detection", "Honest quarantined", "Rate-limited",
               "Replayed", "Liars quarantined"});
  std::uint64_t honestQuarantined = 0;
  metrics::RunningStat floodAttackDetect, liarsQuarantined;
  for (std::size_t row = 0; row < floodRows.size(); ++row) {
    metrics::RunningStat detected, honest, limited, replayed, quarantined;
    for (std::uint32_t t = 0; t < trials; ++t) {
      const TrialResult& r = floodOutcomes[row * trials + t];
      detected.add(r.detected ? 1.0 : 0.0);
      honest.add(static_cast<double>(r.honestRevocations));
      honestQuarantined += r.honestRevocations;
      limited.add(static_cast<double>(r.rateLimited));
      replayed.add(static_cast<double>(r.replayed));
      quarantined.add(static_cast<double>(r.reportersQuarantined));
    }
    const std::string prefix =
        std::string{"adversarial.flood."} + floodRows[row].key;
    obs::addRunningStat(registry, prefix + ".detected", detected);
    obs::addRunningStat(registry, prefix + ".honest_revocations", honest);
    obs::addRunningStat(registry, prefix + ".rate_limited", limited);
    obs::addRunningStat(registry, prefix + ".replayed", replayed);
    obs::addRunningStat(registry, prefix + ".reporters_quarantined",
                        quarantined);
    flood.addRow({floodRows[row].label,
                  floodRows[row].attack == AttackType::kNone
                      ? std::string{"-"}
                      : Table::percent(detected.mean()),
                  Table::num(honest.mean(), 2), Table::num(limited.mean(), 1),
                  Table::num(replayed.mean(), 1),
                  Table::num(quarantined.mean(), 1)});
    if (floodRows[row].attack == AttackType::kSingle) {
      floodAttackDetect = detected;
    }
    if (liarsQuarantined.count() == 0) liarsQuarantined = quarantined;
  }
  flood.print(std::cout);

  obs::writeBenchJson("ablation_adversarial", registry.snapshot(),
                      timer.info());

  // The defense contract: the selective attacker beats the naive probe but
  // not the hardened campaign; flooding never quarantines an honest vehicle
  // and never masks a real attacker entirely.
  const bool ok = naiveVsSelective < naiveVsNaive &&
                  hardenedVsSelective >= naiveVsNaive &&
                  !anyFalsePositive && honestQuarantined == 0 &&
                  liarsQuarantined.mean() > 0.0 &&
                  floodAttackDetect.mean() >= naiveVsNaive;
  std::cout << (ok ? "\nshape check: PASS\n" : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
