// End-to-end throughput gate: BM_E2eHighway + BM_E2eStream.
//
// BM_E2eHighway is the headline: a benign, stationary highway fleet where
// the source streams data packets to the destination over an established
// AODV route. After a warmup burst (queue growth, table rehashes, route
// discovery all amortise out) it brackets a measured burst with the
// common/alloc_hook counters and the medium's frames_delivered counter —
// `allocations_per_frame` in the emitted JSON is allocations / delivered
// frame over that steady-state span, and the zero-allocation goal is gated
// on it by scripts/bench_compare.py.
//
// BM_E2eStream runs StreamWorld epochs the same way (warmup, then measured)
// as the control-plane/service-mode companion; its allocation gauge is
// informational (crypto signing on the d_req path is allowed to allocate).
//
// Emits BENCH_e2e_throughput.json (schema v2 + throughput.allocations_per_
// frame). Trials fan out over --jobs via sim::ParallelRunner; the metrics
// subtree is submission-order merged and identical for any --jobs value.
//
// Flags: --trials N         highway trials (default 2)
//        --packets N        measured data packets per trial (default 10000)
//        --warmup N         warmup data packets per trial (default 2000)
//        --stream-epochs N  measured stream epochs (default 20)
//        --jobs N           worker threads (also BLACKDP_JOBS)
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/alloc_hook.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "obs/registry.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/stream_world.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace blackdp;

struct SpanMeasure {
  std::uint64_t framesDelivered{0};  ///< medium deliveries in the span
  std::uint64_t allocations{0};      ///< heap allocs in the span (this thread)
  std::uint64_t packetsSent{0};
  std::uint64_t packetsDelivered{0};  ///< application packets at destination
  double seconds{0.0};                ///< wall clock of the measured span
};

/// Self-rescheduling sender: one pending event at a time, so the event
/// queue stays at its steady-state size instead of growing by the burst
/// length up front (which would charge queue growth to the measured span).
struct BurstDriver {
  sim::Simulator& simulator;
  aodv::AodvAgent& source;
  common::Address destination;
  sim::Duration gap;
  std::uint32_t remaining{0};
  std::uint32_t sent{0};

  void run(std::uint32_t count) {
    remaining = count;
    tick();
    simulator.run(simulator.now() + gap * static_cast<std::int64_t>(count) +
                  sim::Duration::milliseconds(50));
  }

  void tick() {
    if (remaining == 0) return;
    --remaining;
    ++sent;
    source.sendData(destination);
    simulator.schedule(gap, [this] { tick(); });
  }
};

/// One highway trial: build a benign stationary world, establish the route,
/// warm up, then measure a steady-state burst.
SpanMeasure highwayTrial(std::uint64_t seed, std::uint32_t warmupPackets,
                         std::uint32_t measuredPackets) {
  scenario::ScenarioConfig config;
  config.seed = seed;
  config.attack = scenario::AttackType::kNone;
  // Stationary fleet: no cluster re-joins or route breaks land inside the
  // measured span — this bench times the per-frame data plane, not churn.
  config.minSpeedKmh = 0.0;
  config.maxSpeedKmh = 0.0;

  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));  // cluster joins

  const common::Address dest = world.destination().address();
  bool routed = false;
  world.source().agent->findRoute(dest, [&](bool ok) { routed = ok; });
  world.runFor(sim::Duration::seconds(2));
  if (!routed) {
    std::cerr << "e2e_throughput: highway route discovery failed (seed "
              << seed << ")\n";
    return {};
  }

  BurstDriver driver{world.simulator(), *world.source().agent, dest,
                     sim::Duration::microseconds(100)};
  driver.run(warmupPackets);

  const auto allocsBefore = common::threadAllocCounters();
  const std::uint64_t framesBefore = world.medium().stats().framesDelivered;
  const std::uint64_t deliveredBefore =
      world.destination().agent->stats().dataDelivered;
  const std::uint32_t sentBefore = driver.sent;
  const obs::BenchTimer span;

  driver.run(measuredPackets);

  SpanMeasure m;
  m.seconds = span.elapsedSeconds();
  m.allocations =
      common::threadAllocCounters().allocations - allocsBefore.allocations;
  m.framesDelivered = world.medium().stats().framesDelivered - framesBefore;
  m.packetsSent = driver.sent - sentBefore;
  m.packetsDelivered =
      world.destination().agent->stats().dataDelivered - deliveredBefore;
  return m;
}

/// The stream companion: StreamWorld epochs, warmup then measured.
SpanMeasure streamTrial(std::uint64_t seed, std::uint32_t warmupEpochs,
                        std::uint32_t measuredEpochs) {
  scenario::StreamConfig config;
  config.seed = seed;
  scenario::StreamWorld world(config);
  for (std::uint32_t i = 0; i < warmupEpochs; ++i) world.runEpoch();

  const auto allocsBefore = common::threadAllocCounters();
  const std::uint64_t framesBefore = world.medium().stats().framesDelivered;
  const obs::BenchTimer span;
  for (std::uint32_t i = 0; i < measuredEpochs; ++i) world.runEpoch();

  SpanMeasure m;
  m.seconds = span.elapsedSeconds();
  m.allocations =
      common::threadAllocCounters().allocations - allocsBefore.allocations;
  m.framesDelivered = world.medium().stats().framesDelivered - framesBefore;
  m.packetsSent = measuredEpochs;  // epochs, for the per-epoch gauge
  return m;
}

std::uint32_t flagValue(int& argc, char** argv, std::string_view name,
                        std::uint32_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] != name) continue;
    std::uint32_t value = fallback;
    if (i + 1 < argc) value = static_cast<std::uint32_t>(
                          std::strtoul(argv[i + 1], nullptr, 10));
    const int removed = i + 1 < argc ? 2 : 1;
    for (int j = i; j + removed < argc; ++j) argv[j] = argv[j + removed];
    argc -= removed;
    return value;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;

  const obs::BenchTimer timer;
  const unsigned jobs = sim::resolveJobCount(sim::consumeJobsFlag(argc, argv));
  const std::uint32_t trials = flagValue(argc, argv, "--trials", 2);
  const std::uint32_t packets = flagValue(argc, argv, "--packets", 10'000);
  const std::uint32_t warmup = flagValue(argc, argv, "--warmup", 2'000);
  const std::uint32_t streamEpochs =
      flagValue(argc, argv, "--stream-epochs", 20);
  const std::uint32_t streamWarmup = 5;

  if (!common::allocHookActive()) {
    std::cerr << "e2e_throughput: alloc hook not linked — allocation "
                 "figures will read 0 without meaning\n";
  }

  const sim::ParallelRunner runner{jobs};
  // Trial 0 is the stream phase; 1..trials are highway trials. One map call
  // so --jobs overlaps both phases.
  const std::vector<SpanMeasure> spans = runner.map<SpanMeasure>(
      static_cast<std::size_t>(trials) + 1, [&](std::size_t i) {
        if (i == 0) return streamTrial(2024, streamWarmup, streamEpochs);
        return highwayTrial(100 + static_cast<std::uint64_t>(i), warmup,
                            packets);
      });

  const SpanMeasure& stream = spans[0];
  SpanMeasure highway;  // summed over trials (submission order)
  for (std::size_t i = 1; i < spans.size(); ++i) {
    highway.framesDelivered += spans[i].framesDelivered;
    highway.allocations += spans[i].allocations;
    highway.packetsSent += spans[i].packetsSent;
    highway.packetsDelivered += spans[i].packetsDelivered;
    highway.seconds += spans[i].seconds;
  }

  // Headline throughput: per-thread steady-state rate (frames over summed
  // span seconds), so the figure is comparable across --jobs values.
  const double highwayFps =
      highway.seconds > 0.0
          ? static_cast<double>(highway.framesDelivered) / highway.seconds
          : 0.0;
  const double streamFps =
      stream.seconds > 0.0
          ? static_cast<double>(stream.framesDelivered) / stream.seconds
          : 0.0;
  const double allocsPerFrame =
      highway.framesDelivered > 0
          ? static_cast<double>(highway.allocations) /
                static_cast<double>(highway.framesDelivered)
          : -1.0;

  std::cout << "E2E throughput (steady state)\n\n";
  Table table({"Bench", "Frames", "Wall s", "Frames/s", "Allocs/frame"});
  table.addRow({"BM_E2eHighway", std::to_string(highway.framesDelivered),
                Table::num(highway.seconds, 3), Table::num(highwayFps, 0),
                highway.framesDelivered
                    ? Table::num(allocsPerFrame, 4)
                    : "n/a"});
  table.addRow(
      {"BM_E2eStream", std::to_string(stream.framesDelivered),
       Table::num(stream.seconds, 3), Table::num(streamFps, 0),
       stream.framesDelivered
           ? Table::num(static_cast<double>(stream.allocations) /
                            static_cast<double>(stream.framesDelivered),
                        4)
           : "n/a"});
  table.print(std::cout);
  std::cout << "\nhighway packets delivered : " << highway.packetsDelivered
            << " / " << highway.packetsSent << '\n'
            << "alloc hook                : "
            << (common::allocHookActive() ? "active" : "INACTIVE") << '\n';

  obs::MetricsRegistry registry;
  // Deterministic subtree: identical for any --jobs value.
  registry.counter("highway.frames_delivered").add(highway.framesDelivered);
  registry.counter("highway.packets_sent").add(highway.packetsSent);
  registry.counter("highway.packets_delivered").add(highway.packetsDelivered);
  registry.counter("highway.allocations").add(highway.allocations);
  registry.counter("stream.frames_delivered").add(stream.framesDelivered);
  registry.counter("stream.epochs").add(stream.packetsSent);
  registry.counter("stream.allocations").add(stream.allocations);
  registry.gauge("stream.allocations_per_frame")
      .set(stream.framesDelivered
               ? static_cast<double>(stream.allocations) /
                     static_cast<double>(stream.framesDelivered)
               : 0.0);
  registry.gauge("e2e.trials").set(static_cast<double>(trials));

  obs::BenchRunInfo info = timer.info(highway.framesDelivered);
  info.allocationsPerFrame = allocsPerFrame >= 0.0 ? allocsPerFrame : -1.0;
  // Headline fps is the steady-state rate, not frames over process wall
  // clock (which would charge world construction to the data plane).
  info.wallClockSeconds =
      highwayFps > 0.0
          ? static_cast<double>(highway.framesDelivered) / highwayFps
          : timer.elapsedSeconds();
  obs::writeBenchJson("e2e_throughput", registry.snapshot(), info);

  const bool healthy =
      highway.framesDelivered > 0 && stream.framesDelivered > 0 &&
      highway.packetsDelivered >= highway.packetsSent / 2;
  return healthy ? 0 : 1;
}
