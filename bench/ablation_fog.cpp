// Ablation E — the §III-C bottleneck: cluster-head authentication under a
// reporting storm, with and without fog offloading.
//
// A congested cluster (the paper: up to ~250k vehicles/day on I-95 segments)
// can flood an RSU with secure packets to verify. Each verification costs a
// deterministic ECDSA-class service time; the RSU is one server, fog nodes
// add more. The sweep reports the mean queueing delay per verification as
// the arrival rate crosses the single-server saturation point — the knee
// moves right proportionally to the fog pool, exactly the paper's argument.
#include <iostream>

#include "core/ch_load_model.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};

  // 2 ms per verification → a lone RSU saturates at 500 verifications/s.
  const std::vector<double> arrivalRates{100, 300, 450, 600, 1000, 2000};
  const std::vector<std::uint32_t> fogPools{0, 1, 3, 7};
  constexpr int kJobs = 4'000;

  std::cout << "Ablation E — CH authentication queueing (2 ms/verification, "
               "Poisson arrivals,\n"
            << kJobs << " verifications per cell; mean queueing wait in "
                        "ms; " << runner.jobs() << " jobs)\n\n";

  std::vector<std::string> headers{"Arrivals/s"};
  for (const std::uint32_t fog : fogPools) {
    // append() instead of operator+ sidesteps a GCC 12 -Wrestrict false
    // positive (PR 105329) in the inlined string-concat chain.
    if (fog == 0) {
      headers.emplace_back("RSU alone");
    } else {
      std::string label{"+"};
      label.append(std::to_string(fog));
      label.append(" fog");
      headers.push_back(std::move(label));
    }
  }
  Table table(headers);

  // Every (rate × fog pool) cell owns its simulator and RNG — fan the 24
  // cells across the pool and fold the waits back in grid order.
  const std::vector<double> waits = runner.map<double>(
      arrivalRates.size() * fogPools.size(), [&](std::size_t i) {
        const double rate = arrivalRates[i / fogPools.size()];
        const std::uint32_t fog = fogPools[i % fogPools.size()];
        sim::Simulator simulator;
        core::ChLoadConfig config;
        config.fogNodes = fog;
        core::ChLoadModel model{simulator, config};
        sim::Rng rng{42};

        // Poisson arrivals: exponential gaps.
        sim::TimePoint at;
        for (int j = 0; j < kJobs; ++j) {
          const double gap = -std::log(rng.uniformReal(1e-12, 1.0)) / rate;
          at = at + sim::Duration::fromSeconds(gap);
          simulator.scheduleAt(at, [&model] { model.submit([] {}); });
        }
        simulator.run();
        return model.stats().meanWaitMs();
      });

  obs::MetricsRegistry registry;
  double aloneAt600 = 0.0;
  double fog3At600 = 0.0;
  for (std::size_t r = 0; r < arrivalRates.size(); ++r) {
    const double rate = arrivalRates[r];
    std::vector<std::string> row{Table::num(rate, 0)};
    for (std::size_t f = 0; f < fogPools.size(); ++f) {
      const std::uint32_t fog = fogPools[f];
      const double wait = waits[r * fogPools.size() + f];
      registry
          .gauge("fog.wait_ms.rate" +
                 std::to_string(static_cast<int>(rate)) + ".fog" +
                 std::to_string(fog))
          .set(wait);
      row.push_back(Table::num(wait, 2));
      if (rate == 600 && fog == 0) aloneAt600 = wait;
      if (rate == 600 && fog == 3) fog3At600 = wait;
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nat 600 verifications/s the lone RSU is past saturation "
               "(mean wait "
            << Table::num(aloneAt600, 1) << " ms and growing with the "
            << "backlog); three fog nodes bring it to "
            << Table::num(fog3At600, 2) << " ms.\n";
  obs::writeBenchJson("ablation_fog", registry.snapshot(), timer.info());

  const bool ok = aloneAt600 > 50.0 && fog3At600 < 5.0;
  std::cout << (ok ? "\nshape check: PASS (fog offloading moves the "
                     "saturation knee, §III-C)\n"
                   : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
