// Extension experiment (paper §VI future work): BlackDP on an urban
// Manhattan grid. One RSU per intersection, vehicles driving turn-by-turn
// street legs, attacker placed at varying intersections. Reports detection
// accuracy and false positives per placement, single and cooperative.
//
// Expected shape: the highway result carries over — near-100% detection and
// zero false positives — because the protocol depends only on zone-local
// trusted probing, not on the road geometry. Mobility is harsher (turns
// break paths more often), so occasional prevented-but-undetected trials
// are acceptable.
#include <cstdlib>
#include <iostream>

#include "metrics/confusion.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/telemetry.hpp"
#include "scenario/urban_scenario.hpp"

namespace {

using namespace blackdp;

metrics::ConfusionMatrix runCell(scenario::AttackType attack, std::uint32_t ix,
                                 std::uint32_t iy, std::uint32_t trials,
                                 std::uint64_t seedBase,
                                 obs::MetricsRegistry& registry) {
  metrics::ConfusionMatrix matrix;
  for (std::uint32_t t = 0; t < trials; ++t) {
    scenario::UrbanConfig config;
    config.seed = seedBase + 131 * (iy * 16 + ix) + t +
                  (attack == scenario::AttackType::kCooperative ? 7777 : 0);
    config.attack = attack;
    config.attackerIx = ix;
    config.attackerIy = iy;
    scenario::UrbanScenario world(config);
    (void)world.runVerification();
    const scenario::DetectionSummary summary = world.detectionSummary();
    if (summary.confirmedOnAttacker) {
      matrix.addTruePositive();
    } else {
      matrix.addFalseNegative();
    }
    if (summary.falsePositive) {
      matrix.addFalsePositive();
    } else {
      matrix.addTrueNegative();
    }
    scenario::collectWorldMetrics(registry, world);
  }
  return matrix;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 25;

  std::cout << "Urban extension — BlackDP on a 4x4-block Manhattan grid ("
            << trials << " trials per placement)\n\n";

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> placements{
      {1, 1}, {2, 2}, {1, 3}, {3, 1}, {2, 0},
  };

  obs::MetricsRegistry registry;
  Table table({"Attack", "Attacker intersection", "Detection accuracy",
               "False positives"});
  metrics::ConfusionMatrix total;
  for (const scenario::AttackType attack :
       {scenario::AttackType::kSingle, scenario::AttackType::kCooperative}) {
    for (const auto& [ix, iy] : placements) {
      const metrics::ConfusionMatrix cell =
          runCell(attack, ix, iy, trials, 20260706, registry);
      table.addRow({std::string(scenario::toString(attack)),
                    "(" + std::to_string(ix) + "," + std::to_string(iy) + ")",
                    Table::percent(cell.recall()),
                    std::to_string(cell.fp())});
      obs::addConfusion(registry,
                        "urban." + std::string{scenario::toString(attack)} +
                            "." + std::to_string(ix) + "_" +
                            std::to_string(iy),
                        cell);
      total += cell;
    }
  }
  table.print(std::cout);

  obs::addConfusion(registry, "urban.total", total);
  obs::writeBenchJson("urban_detection", registry.snapshot());

  const double overall = total.recall();
  std::cout << "\noverall detection accuracy: " << Table::percent(overall)
            << ", false positives: " << total.fp() << '\n';

  const bool ok = overall >= 0.9 && total.fp() == 0;
  std::cout << (ok ? "shape check: PASS (highway result carries over to the "
                     "urban grid)\n"
                   : "shape check: FAIL\n");
  return ok ? 0 : 1;
}
