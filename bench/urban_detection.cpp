// Extension experiment (paper §VI future work): BlackDP on an urban
// Manhattan grid. One RSU per intersection, vehicles driving turn-by-turn
// street legs, attacker placed at varying intersections. Reports detection
// accuracy and false positives per placement, single and cooperative.
//
// Expected shape: the highway result carries over — near-100% detection and
// zero false positives — because the protocol depends only on zone-local
// trusted probing, not on the road geometry. Mobility is harsher (turns
// break paths more often), so occasional prevented-but-undetected trials
// are acceptable.
#include <cstdlib>
#include <iostream>

#include "metrics/confusion.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/telemetry.hpp"
#include "scenario/urban_scenario.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace blackdp;

struct UrbanTrialOutcome {
  bool confirmed{false};
  bool falsePositive{false};
  obs::Snapshot world;  ///< per-trial collectWorldMetrics snapshot
};

UrbanTrialOutcome runTrial(scenario::AttackType attack, std::uint32_t ix,
                           std::uint32_t iy, std::uint32_t trial,
                           std::uint64_t seedBase) {
  scenario::UrbanConfig config;
  config.seed = seedBase + 131 * (iy * 16 + ix) + trial +
                (attack == scenario::AttackType::kCooperative ? 7777 : 0);
  config.attack = attack;
  config.attackerIx = ix;
  config.attackerIy = iy;
  scenario::UrbanScenario world(config);
  (void)world.runVerification();
  const scenario::DetectionSummary summary = world.detectionSummary();

  UrbanTrialOutcome outcome;
  outcome.confirmed = summary.confirmedOnAttacker;
  outcome.falsePositive = summary.falsePositive;
  obs::MetricsRegistry local;
  scenario::collectWorldMetrics(local, world);
  outcome.world = local.snapshot();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;
  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 25;

  std::cout << "Urban extension — BlackDP on a 4x4-block Manhattan grid ("
            << trials << " trials per placement, " << runner.jobs()
            << " jobs)\n\n";

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> placements{
      {1, 1}, {2, 2}, {1, 3}, {3, 1}, {2, 0},
  };

  // Flatten (attack × placement × trial) and fold in submission order so the
  // merged metrics are independent of the worker count.
  struct Cell {
    scenario::AttackType attack;
    std::uint32_t ix;
    std::uint32_t iy;
  };
  std::vector<Cell> grid;
  for (const scenario::AttackType attack :
       {scenario::AttackType::kSingle, scenario::AttackType::kCooperative}) {
    for (const auto& [ix, iy] : placements) grid.push_back({attack, ix, iy});
  }
  const std::vector<UrbanTrialOutcome> outcomes =
      runner.map<UrbanTrialOutcome>(grid.size() * trials, [&](std::size_t i) {
        const Cell& cell = grid[i / trials];
        return runTrial(cell.attack, cell.ix, cell.iy,
                        static_cast<std::uint32_t>(i % trials), 20260706);
      });

  obs::MetricsRegistry registry;
  Table table({"Attack", "Attacker intersection", "Detection accuracy",
               "False positives"});
  metrics::ConfusionMatrix total;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const Cell& placement = grid[g];
    metrics::ConfusionMatrix cell;
    for (std::uint32_t t = 0; t < trials; ++t) {
      const UrbanTrialOutcome& outcome = outcomes[g * trials + t];
      if (outcome.confirmed) {
        cell.addTruePositive();
      } else {
        cell.addFalseNegative();
      }
      if (outcome.falsePositive) {
        cell.addFalsePositive();
      } else {
        cell.addTrueNegative();
      }
      registry.merge(outcome.world);
    }
    // std::string lhs (not const char*) sidesteps a GCC 12 -Wrestrict false
    // positive (PR 105329) in operator+(const char*, std::string&&).
    table.addRow({std::string(scenario::toString(placement.attack)),
                  std::string{"("} + std::to_string(placement.ix) + "," +
                      std::to_string(placement.iy) + ")",
                  Table::percent(cell.recall()), std::to_string(cell.fp())});
    obs::addConfusion(registry,
                      "urban." + std::string{scenario::toString(placement.attack)} +
                          "." + std::to_string(placement.ix) + "_" +
                          std::to_string(placement.iy),
                      cell);
    total += cell;
  }
  table.print(std::cout);

  obs::addConfusion(registry, "urban.total", total);
  obs::writeBenchJson("urban_detection", registry.snapshot(), timer.info());

  const double overall = total.recall();
  std::cout << "\noverall detection accuracy: " << Table::percent(overall)
            << ", false positives: " << total.fp() << '\n';

  const bool ok = overall >= 0.9 && total.fp() == 0;
  std::cout << (ok ? "shape check: PASS (highway result carries over to the "
                     "urban grid)\n"
                   : "shape check: FAIL\n");
  return ok ? 0 : 1;
}
