// Figure 4 reproduction: detection accuracy, false-positive rate, and
// false-negative rate of BlackDP vs. attacker cluster (1-10), for single and
// cooperative black hole attacks. 150 repetitions per treatment, as in the
// paper (override with argv[1] for a quicker run).
//
// Paper shape to reproduce: 100% accuracy and 0% FP/FN while the attacker is
// in clusters 1-7; accuracy drops and FN rises through clusters 8-10 (the
// certificate-renewal clusters where attackers may act legitimately, renew
// pseudonyms, or flee); FP stays 0 everywhere.
#include <cstdlib>
#include <iostream>

#include "metrics/confusion.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/experiments.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 150;
  std::cout << "Figure 4 — single and cooperative black hole attacks ("
            << trials << " repetitions per treatment, " << runner.jobs()
            << " jobs)\n\n";

  obs::MetricsRegistry registry;
  const std::vector<scenario::Fig4Cell> cells =
      scenario::runFig4Sweep(trials, /*seedBase=*/20170605, nullptr,
                             &registry, &runner);

  for (const scenario::AttackType attack :
       {scenario::AttackType::kSingle, scenario::AttackType::kCooperative}) {
    std::cout << "attack type: " << scenario::toString(attack) << "\n";
    Table table({"Cluster", "Detection accuracy", "False positives",
                 "False negatives", "Prevented (undetected)"});
    for (const scenario::Fig4Cell& cell : cells) {
      if (cell.attack != attack) continue;
      table.addRow({std::to_string(cell.cluster.value()),
                    Table::percent(cell.detectionAccuracy()),
                    Table::percent(cell.falsePositiveRate()),
                    Table::percent(cell.falseNegativeRate()),
                    std::to_string(cell.prevented)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // One confusion matrix per attack type feeds the shared bench-JSON path
  // (per-stage latency histograms were folded in trial by trial above).
  for (const scenario::AttackType attack :
       {scenario::AttackType::kSingle, scenario::AttackType::kCooperative}) {
    metrics::ConfusionMatrix matrix;
    for (const scenario::Fig4Cell& cell : cells) {
      if (cell.attack != attack) continue;
      matrix += metrics::ConfusionMatrix::fromCounts(
          cell.detected, cell.falsePositives, cell.trials - cell.falsePositives,
          cell.trials - cell.detected);
      registry
          .gauge(std::string{"fig4."} + std::string{scenario::toString(attack)} +
                 ".cluster" + std::to_string(cell.cluster.value()) + ".accuracy")
          .set(cell.detectionAccuracy());
    }
    obs::addConfusion(registry,
                      std::string{"fig4."} +
                          std::string{scenario::toString(attack)},
                      matrix);
  }
  obs::writeBenchJson("fig4_detection", registry.snapshot(), timer.info());

  // Paper-shape sanity summary.
  bool ok = true;
  for (const scenario::Fig4Cell& cell : cells) {
    if (cell.falsePositives != 0) ok = false;                  // FP must be 0
    if (cell.cluster.value() <= 7 && cell.detected != cell.trials) ok = false;
  }
  std::cout << (ok ? "shape check: PASS (0% FP everywhere, 100% accuracy in "
                     "clusters 1-7)\n"
                   : "shape check: FAIL\n");
  return ok ? 0 : 1;
}
