// Figure 4 reproduction: detection accuracy, false-positive rate, and
// false-negative rate of BlackDP vs. attacker cluster (1-10), for single and
// cooperative black hole attacks. 150 repetitions per treatment, as in the
// paper (override with argv[1] for a quicker run).
//
// Paper shape to reproduce: 100% accuracy and 0% FP/FN while the attacker is
// in clusters 1-7; accuracy drops and FN rises through clusters 8-10 (the
// certificate-renewal clusters where attackers may act legitimately, renew
// pseudonyms, or flee); FP stays 0 everywhere.
//
// The grid is the built-in "fig4" campaign spec — this binary is a thin
// front-end over the campaign engine (same treatments, seeds, manifest and
// BENCH_fig4.json as `campaign_run fig4`), keeping only the per-attack
// tables and the shape check.
#include <cstdlib>
#include <iostream>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "metrics/table.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  campaign::CampaignOptions options;
  options.jobs = sim::consumeJobsFlag(argc, argv);
  options.log = &std::cout;
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 150;

  std::optional<campaign::CampaignSpec> spec =
      campaign::parseCampaignSpec(campaign::findBuiltinSpec("fig4")->json);
  if (!spec) return 2;
  spec->trials = trials;
  std::cout << "Figure 4 — single and cooperative black hole attacks ("
            << trials << " repetitions per treatment)\n\n";

  const campaign::CampaignResult result =
      campaign::CampaignRunner{options}.run(*spec);

  for (const scenario::AttackType attack :
       {scenario::AttackType::kSingle, scenario::AttackType::kCooperative}) {
    std::cout << "attack type: " << scenario::toString(attack) << "\n";
    Table table({"Cluster", "Detection accuracy", "False positives",
                 "False negatives", "Prevented (undetected)"});
    for (const campaign::TreatmentCell& cell : result.cells) {
      const scenario::ScenarioConfig& config = cell.treatment.config.scenario;
      if (config.attack != attack) continue;
      const auto rate = [&](std::uint32_t count) {
        return cell.trials == 0 ? 0.0
                                : static_cast<double>(count) /
                                      static_cast<double>(cell.trials);
      };
      // The verifier never routes data through an unverified claim, so an
      // undetected attacker still failed to establish its black hole.
      table.addRow({std::to_string(config.attackerCluster->value()),
                    Table::percent(rate(cell.detected)),
                    Table::percent(rate(cell.falsePositives)),
                    Table::percent(rate(cell.trials - cell.detected)),
                    std::to_string(cell.trials - cell.detected)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Paper-shape sanity summary.
  bool ok = true;
  for (const campaign::TreatmentCell& cell : result.cells) {
    if (cell.falsePositives != 0) ok = false;  // FP must be 0
    if (cell.treatment.config.scenario.attackerCluster->value() <= 7 &&
        cell.detected != cell.trials) {
      ok = false;
    }
  }
  std::cout << (ok ? "shape check: PASS (0% FP everywhere, 100% accuracy in "
                     "clusters 1-7)\n"
                   : "shape check: FAIL\n");
  return ok ? 0 : 1;
}
