// Figure 5 reproduction: number of detection packets BlackDP needs through
// the RSU(s) per scenario. Paper values: 4-6 with no attacker; 6-9 for a
// single black hole (6 same-cluster, 8 same-cluster-then-flees, 9
// cross-cluster-then-flees); cooperative adds two teammate-probe packets
// (8-11).
#include <algorithm>
#include <iostream>

#include "core/telemetry.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/experiments.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  std::cout << "Figure 5 — detection packets per scenario (" << runner.jobs()
            << " jobs)\n\n";

  // Each placement is an independent scripted world; run them across the
  // pool and fold the results in case order.
  const std::vector<scenario::Fig5Case> cases = scenario::fig5Cases();
  const std::vector<scenario::Fig5Result> results =
      runner.map<scenario::Fig5Result>(cases.size(), [&](std::size_t i) {
        return scenario::runFig5Case(cases[i], /*seed=*/11);
      });

  obs::MetricsRegistry registry;
  Table table({"Scenario", "Detection packets", "Latency", "Verdict"});
  std::uint32_t noneMin = ~0u, noneMax = 0;
  std::uint32_t singleMin = ~0u, singleMax = 0;
  std::uint32_t coopMin = ~0u, coopMax = 0;

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const scenario::Fig5Case& c = cases[i];
    const scenario::Fig5Result& result = results[i];
    core::recordSessionTelemetry(registry, result.record);
    table.addRow({result.label, std::to_string(result.detectionPackets),
                  Table::num(result.latency.toSeconds() * 1000.0, 1) + " ms",
                  std::string(core::toString(result.verdict))});
    auto& minRef = c.attack == scenario::AttackType::kNone     ? noneMin
                   : c.attack == scenario::AttackType::kSingle ? singleMin
                                                               : coopMin;
    auto& maxRef = c.attack == scenario::AttackType::kNone     ? noneMax
                   : c.attack == scenario::AttackType::kSingle ? singleMax
                                                               : coopMax;
    minRef = std::min(minRef, result.detectionPackets);
    maxRef = std::max(maxRef, result.detectionPackets);
  }
  table.print(std::cout);

  std::cout << "\nranges (paper: no attacker 4-6, single 6-9, cooperative "
               "8-11)\n\n";
  Table ranges({"Treatment", "Measured", "Paper"});
  ranges.addRow({"no attacker",
                 std::to_string(noneMin) + "-" + std::to_string(noneMax),
                 "4-6"});
  ranges.addRow({"single black hole",
                 std::to_string(singleMin) + "-" + std::to_string(singleMax),
                 "6-9"});
  ranges.addRow({"cooperative black hole",
                 std::to_string(coopMin) + "-" + std::to_string(coopMax),
                 "8-11"});
  ranges.print(std::cout);

  const auto packetRange = [&](const char* key, std::uint32_t lo,
                               std::uint32_t hi) {
    registry.gauge(std::string{"fig5."} + key + ".packets_min")
        .set(static_cast<double>(lo));
    registry.gauge(std::string{"fig5."} + key + ".packets_max")
        .set(static_cast<double>(hi));
  };
  packetRange("none", noneMin, noneMax);
  packetRange("single", singleMin, singleMax);
  packetRange("cooperative", coopMin, coopMax);
  obs::writeBenchJson("fig5_packets", registry.snapshot(), timer.info());

  const bool ok = noneMin >= 4 && noneMax <= 6 && singleMin >= 6 &&
                  singleMax <= 9 && coopMin >= 8 && coopMax <= 11;
  std::cout << (ok ? "\nshape check: PASS (all ranges within the paper's)\n"
                   : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
