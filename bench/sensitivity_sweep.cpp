// Sensitivity sweep — detection robustness across the workload axes Table I
// fixes: vehicle density and DSRC transmission range.
//
// The paper evaluates one operating point (100 vehicles, 1000 m range).
// This sweep varies both and measures detection accuracy and false
// positives for a single black hole in cluster 2 — probing where the
// protocol's connectivity assumptions start to matter. Expected shape:
// accuracy stays near 100% while the network is connected (FP pinned at 0
// everywhere); very sparse fleets with short ranges partition the highway
// and the *attack itself* cannot reach the victim, so trials degrade to
// no-route rather than to missed detections.
//
// The grid is the built-in "sensitivity" campaign spec — this binary is a
// thin front-end over the campaign engine (same treatments, seeds, manifest
// and BENCH_sensitivity.json as `campaign_run sensitivity`), keeping only
// the table rendering and the shape check. Trials fan out across worker
// threads (--jobs N / BLACKDP_JOBS); the results are identical for any job
// count.
#include <cstdlib>
#include <iostream>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "metrics/table.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  campaign::CampaignOptions options;
  options.jobs = sim::consumeJobsFlag(argc, argv);
  options.log = &std::cout;
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 40;

  std::optional<campaign::CampaignSpec> spec = campaign::parseCampaignSpec(
      campaign::findBuiltinSpec("sensitivity")->json);
  if (!spec) return 2;
  spec->trials = trials;
  std::cout << "Sensitivity — detection vs. density and radio range (" << trials
            << " trials per cell, single black hole, cluster 2)\n\n";

  const campaign::CampaignResult result =
      campaign::CampaignRunner{options}.run(*spec);

  Table table({"#Vehicles", "Range", "Detection accuracy", "False positives",
               "Attacks launched"});
  bool fpClean = true;
  double accuracyAtTableI = 0.0;
  for (const campaign::TreatmentCell& cell : result.cells) {
    if (cell.matrix.fp() > 0) fpClean = false;
    const double accuracy = cell.detectionAccuracy();
    const scenario::ScenarioConfig& config = cell.treatment.config.scenario;
    if (config.vehicleCount == 100 && config.transmissionRangeM == 1000.0) {
      accuracyAtTableI = accuracy;
    }
    table.addRow({std::to_string(config.vehicleCount),
                  Table::num(config.transmissionRangeM, 0) + " m",
                  Table::percent(accuracy), std::to_string(cell.matrix.fp()),
                  std::to_string(cell.attacksLaunched) + "/" +
                      std::to_string(cell.trials)});
  }
  table.print(std::cout);

  std::cout << "\nfalse positives across the whole sweep: "
            << (fpClean ? "0" : "NONZERO") << '\n';
  const bool ok = fpClean && accuracyAtTableI >= 0.99;
  std::cout << (ok ? "\nshape check: PASS (Table-I point at 100%, FP = 0 on "
                     "every axis)\n"
                   : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
