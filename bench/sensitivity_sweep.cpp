// Sensitivity sweep — detection robustness across the workload axes Table I
// fixes: vehicle density and DSRC transmission range.
//
// The paper evaluates one operating point (100 vehicles, 1000 m range).
// This sweep varies both and measures detection accuracy and false
// positives for a single black hole in cluster 2 — probing where the
// protocol's connectivity assumptions start to matter. Expected shape:
// accuracy stays near 100% while the network is connected (FP pinned at 0
// everywhere); very sparse fleets with short ranges partition the highway
// and the *attack itself* cannot reach the victim, so trials degrade to
// no-route rather than to missed detections.
//
// Trials fan out across worker threads (--jobs N / BLACKDP_JOBS, default
// hardware concurrency); the merged metrics are identical for any job
// count.
#include <cstdlib>
#include <iostream>

#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/experiments.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 40;
  std::cout << "Sensitivity — detection vs. density and radio range ("
            << trials << " trials per cell, single black hole, cluster 2, "
            << runner.jobs() << " jobs)\n\n";

  const std::vector<std::uint32_t> fleets{40, 70, 100, 150};
  const std::vector<double> ranges{600.0, 800.0, 1000.0};

  obs::MetricsRegistry registry;
  const std::vector<scenario::SensitivityCell> cells =
      scenario::runSensitivitySweep(fleets, ranges, trials, 31'000, runner,
                                    &registry);

  Table table({"#Vehicles", "Range", "Detection accuracy", "False positives",
               "Attacks launched"});
  bool fpClean = true;
  double accuracyAtTableI = 0.0;
  for (const scenario::SensitivityCell& cell : cells) {
    if (cell.matrix.fp() > 0) fpClean = false;
    const double accuracy = cell.detectionAccuracy();
    if (cell.fleet == 100 && cell.rangeM == 1000.0) accuracyAtTableI = accuracy;
    table.addRow({std::to_string(cell.fleet),
                  Table::num(cell.rangeM, 0) + " m", Table::percent(accuracy),
                  std::to_string(cell.matrix.fp()),
                  std::to_string(cell.attacksLaunched) + "/" +
                      std::to_string(cell.trials)});
  }
  table.print(std::cout);
  obs::writeBenchJson("sensitivity_sweep", registry.snapshot(), timer.info());

  std::cout << "\nfalse positives across the whole sweep: "
            << (fpClean ? "0" : "NONZERO") << '\n';
  const bool ok = fpClean && accuracyAtTableI >= 0.99;
  std::cout << (ok ? "\nshape check: PASS (Table-I point at 100%, FP = 0 on "
                     "every axis)\n"
                   : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
