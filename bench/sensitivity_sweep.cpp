// Sensitivity sweep — detection robustness across the workload axes Table I
// fixes: vehicle density and DSRC transmission range.
//
// The paper evaluates one operating point (100 vehicles, 1000 m range).
// This sweep varies both and measures detection accuracy and false
// positives for a single black hole in cluster 2 — probing where the
// protocol's connectivity assumptions start to matter. Expected shape:
// accuracy stays near 100% while the network is connected (FP pinned at 0
// everywhere); very sparse fleets with short ranges partition the highway
// and the *attack itself* cannot reach the victim, so trials degrade to
// no-route rather than to missed detections.
#include <cstdlib>
#include <iostream>

#include "metrics/confusion.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/experiments.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 40;
  std::cout << "Sensitivity — detection vs. density and radio range ("
            << trials << " trials per cell, single black hole, cluster 2)\n\n";

  const std::vector<std::uint32_t> fleets{40, 70, 100, 150};
  const std::vector<double> ranges{600.0, 800.0, 1000.0};

  obs::MetricsRegistry registry;
  Table table({"#Vehicles", "Range", "Detection accuracy", "False positives",
               "Attacks launched"});
  bool fpClean = true;
  double accuracyAtTableI = 0.0;
  for (const std::uint32_t fleet : fleets) {
    for (const double range : ranges) {
      metrics::ConfusionMatrix matrix;
      std::uint32_t launched = 0;
      for (std::uint32_t t = 0; t < trials; ++t) {
        scenario::ScenarioConfig config;
        config.seed = 31'000 + 977 * fleet + static_cast<std::uint64_t>(range) +
                      t;
        config.vehicleCount = fleet;
        config.transmissionRangeM = range;
        // Keep the paper's geometric invariant: cluster length = range, so
        // every RSU covers its segment.
        config.clusterLengthM = range;
        config.attack = scenario::AttackType::kSingle;
        config.attackerCluster = common::ClusterId{2};
        config.evasion.firstEvasiveCluster = 99;

        scenario::HighwayScenario world(config);
        (void)world.runVerification();
        const scenario::DetectionSummary summary = world.detectionSummary();
        if (world.primaryAttacker()->attacker->attackStats().rrepsForged > 0) {
          ++launched;
          if (summary.confirmedOnAttacker) {
            matrix.addTruePositive();
          } else {
            matrix.addFalseNegative();
          }
        } else {
          // The attack never reached the victim's discovery (partitioned
          // network): a negative trial, correctly left unflagged.
          matrix.addTrueNegative();
        }
        if (summary.falsePositive) {
          matrix.addFalsePositive();
          fpClean = false;
        }
      }
      // Accuracy over trials where the attack actually reached the victim's
      // discovery (in partitioned networks it cannot).
      const double accuracy = launched == 0 ? 0.0 : matrix.recall();
      if (fleet == 100 && range == 1000.0) accuracyAtTableI = accuracy;
      const std::string prefix = "sweep.v" + std::to_string(fleet) + ".r" +
                                 std::to_string(static_cast<int>(range));
      obs::addConfusion(registry, prefix, matrix);
      registry.counter(prefix + ".attacks_launched").add(launched);
      table.addRow({std::to_string(fleet), Table::num(range, 0) + " m",
                    Table::percent(accuracy),
                    std::to_string(matrix.fp()),
                    std::to_string(launched) + "/" + std::to_string(trials)});
    }
  }
  table.print(std::cout);
  obs::writeBenchJson("sensitivity_sweep", registry.snapshot());

  std::cout << "\nfalse positives across the whole sweep: "
            << (fpClean ? "0" : "NONZERO") << '\n';
  const bool ok = fpClean && accuracyAtTableI >= 0.99;
  std::cout << (ok ? "\nshape check: PASS (Table-I point at 100%, FP = 0 on "
                     "every axis)\n"
                   : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
