// The megacity gate: a national corridor (default 100 km, 10k vehicles,
// join/leave churn, ~1% black holes) run twice — once monolithic
// (--shards-a, default 1) and once partitioned (--shards-b, default 4) —
// on the same thread pool.
//
// The bench asserts the tentpole guarantee end to end: both runs must be
// BYTE-IDENTICAL on the deterministic surfaces (merged metrics JSON and the
// canonical per-segment log); a mismatch is an exit-1 failure, not a
// statistic. A third leg re-runs the partitioned configuration with a
// scripted mid-run shard crash (supervisor restart + envelope replay) while
// checkpointing every other epoch — it must converge to the same surfaces,
// with the checkpoint time reported as overhead. BENCH_megacity.json
// (schema v2) carries two machine-dependent sidecars: "sharding"
// (per-configuration fps, speedup, per-shard busy seconds and balance,
// envelope volume) and "fault_tolerance" (checkpoint seconds/bytes, crash
// epoch, restart/replay/recovery counters, identity verdict).
// scripts/bench_compare.py gates frames_per_second against the committed
// baseline and the checkpoint overhead against 5% of the leg's wall clock;
// CI additionally checks the baseline's speedup stays > 1.
//
// Flags: --segments N       corridor length in km (default 100)
//        --vehicles N       fleet size (default 10000)
//        --epochs N         1 s epochs to run (default 12: full churn window)
//        --shards-a N       first partitioning (default 1)
//        --shards-b N       second partitioning (default 4)
//        --seed N           corridor seed (default 42)
//        --jobs N           worker threads (also BLACKDP_JOBS)
//        --surfaces-out-a F dump run A's metrics+log to file F (CI cmp)
//        --surfaces-out-b F dump run B's metrics+log to file F (CI cmp)
//        --no-json          skip writing BENCH_megacity.json
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/corridor_world.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace blackdp;

std::uint32_t flagValue(int& argc, char** argv, std::string_view name,
                        std::uint32_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] != name) continue;
    std::uint32_t value = fallback;
    if (i + 1 < argc) value = static_cast<std::uint32_t>(
                          std::strtoul(argv[i + 1], nullptr, 10));
    const int removed = i + 1 < argc ? 2 : 1;
    for (int j = i; j + removed < argc; ++j) argv[j] = argv[j + removed];
    argc -= removed;
    return value;
  }
  return fallback;
}

std::string flagString(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] != name) continue;
    std::string value;
    if (i + 1 < argc) value = argv[i + 1];
    const int removed = i + 1 < argc ? 2 : 1;
    for (int j = i; j + removed < argc; ++j) argv[j] = argv[j + removed];
    argc -= removed;
    return value;
  }
  return {};
}

bool flagPresent(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] != name) continue;
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    return true;
  }
  return false;
}

struct RunResult {
  std::string metricsJson;
  std::string canonicalLog;
  std::uint64_t framesDelivered{0};
  double runSeconds{0.0};
  double fps{0.0};
  shard::ShardStats stats;
  obs::Snapshot snapshot;
};

RunResult runCorridor(const scenario::CorridorConfig& config,
                      std::uint32_t shards, std::uint32_t epochs,
                      sim::ThreadPool& pool) {
  scenario::CorridorWorld world{config, shards, pool};
  const auto begin = std::chrono::steady_clock::now();
  world.run(epochs);
  RunResult out;
  out.runSeconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
  out.metricsJson = world.metricsJson();
  out.canonicalLog = world.canonicalLog();
  out.framesDelivered = world.framesDelivered();
  out.fps = out.runSeconds > 0.0
                ? static_cast<double>(out.framesDelivered) / out.runSeconds
                : 0.0;
  out.stats = world.shardStats();
  out.snapshot = world.metricsSnapshot();
  return out;
}

/// The fault-tolerance leg: the partitioned corridor re-run with a scripted
/// mid-run shard crash (supervisor restart + envelope replay) while writing
/// an in-memory checkpoint every other epoch boundary. Its surfaces must
/// still equal the healthy partitioned run's, and the checkpoint time is
/// the overhead bench_compare.py gates (<= 5% of the leg's wall clock).
struct FaultToleranceResult {
  std::string metricsJson;
  std::string canonicalLog;
  double runSeconds{0.0};
  double checkpointSeconds{0.0};
  std::uint64_t checkpointsWritten{0};
  std::uint64_t checkpointBytes{0};  ///< last checkpoint's size
  std::uint32_t crashEpoch{0};
  shard::ShardStats stats;
};

FaultToleranceResult runFaultTolerance(const scenario::CorridorConfig& base,
                                       std::uint32_t shards,
                                       std::uint32_t epochs,
                                       sim::ThreadPool& pool) {
  constexpr std::uint32_t kCheckpointEvery = 2;
  FaultToleranceResult out;
  out.crashEpoch = epochs / 2;

  scenario::CorridorConfig config = base;
  config.supervisionEvery = kCheckpointEvery;
  config.faults.shardCrashes.push_back({out.crashEpoch, shards - 1});

  scenario::CorridorWorld world{config, shards, pool};
  const auto begin = std::chrono::steady_clock::now();
  while (world.nextEpoch() < epochs) {
    world.step();
    if (world.nextEpoch() % kCheckpointEvery != 0) continue;
    const auto ckptBegin = std::chrono::steady_clock::now();
    const common::Bytes blob = world.saveCheckpoint();
    out.checkpointSeconds += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - ckptBegin)
                                 .count();
    ++out.checkpointsWritten;
    out.checkpointBytes = blob.size();
  }
  world.finish();
  out.runSeconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
  out.metricsJson = world.metricsJson();
  out.canonicalLog = world.canonicalLog();
  out.stats = world.shardStats();
  return out;
}

bool dumpSurfaces(const std::string& path, const RunResult& run) {
  if (path.empty()) return true;
  std::ofstream os{path};
  if (!os) {
    std::cerr << "megacity: cannot write " << path << '\n';
    return false;
  }
  os << run.metricsJson << '\n' << run.canonicalLog;
  return true;
}

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::Table;

  const obs::BenchTimer timer;
  const unsigned jobs = sim::resolveJobCount(sim::consumeJobsFlag(argc, argv));
  scenario::CorridorConfig config;
  config.segments = flagValue(argc, argv, "--segments", 100);
  config.vehicles = flagValue(argc, argv, "--vehicles", 10'000);
  config.seed = flagValue(argc, argv, "--seed", 42);
  const std::uint32_t epochs = flagValue(argc, argv, "--epochs", 12);
  const std::uint32_t shardsA = flagValue(argc, argv, "--shards-a", 1);
  const std::uint32_t shardsB = flagValue(argc, argv, "--shards-b", 4);
  const std::string outA = flagString(argc, argv, "--surfaces-out-a");
  const std::string outB = flagString(argc, argv, "--surfaces-out-b");
  const bool noJson = flagPresent(argc, argv, "--no-json");

  const sim::ParallelRunner runner{jobs};
  sim::ThreadPool& pool = runner.threadPool();

  std::cout << "Megacity corridor: " << config.segments << " km, "
            << config.vehicles << " vehicles, " << epochs << " epochs, "
            << "shards " << shardsA << " vs " << shardsB << ", jobs " << jobs
            << "\n\n";

  const RunResult a = runCorridor(config, shardsA, epochs, pool);
  const RunResult b = runCorridor(config, shardsB, epochs, pool);
  const FaultToleranceResult ft =
      runFaultTolerance(config, shardsB, epochs, pool);

  const bool identical = a.metricsJson == b.metricsJson &&
                         a.canonicalLog == b.canonicalLog &&
                         a.framesDelivered == b.framesDelivered;
  // The crashed-and-restarted run must converge to the same surfaces: the
  // supervisor replayed the retained envelopes, so the recovery is
  // unobservable on the deterministic side.
  const bool ftIdentical = ft.metricsJson == b.metricsJson &&
                           ft.canonicalLog == b.canonicalLog;
  const double speedup = a.fps > 0.0 ? b.fps / a.fps : 0.0;

  double busyMin = 0.0;
  double busyMax = 0.0;
  for (std::size_t s = 0; s < b.stats.busySeconds.size(); ++s) {
    const double busy = b.stats.busySeconds[s];
    if (s == 0 || busy < busyMin) busyMin = busy;
    if (s == 0 || busy > busyMax) busyMax = busy;
  }
  const double balance = busyMax > 0.0 ? busyMin / busyMax : 0.0;

  Table table({"Run", "Shards", "Frames", "Wall s", "Frames/s"});
  table.addRow({"A", std::to_string(shardsA),
                std::to_string(a.framesDelivered), Table::num(a.runSeconds, 3),
                Table::num(a.fps, 0)});
  table.addRow({"B", std::to_string(shardsB),
                std::to_string(b.framesDelivered), Table::num(b.runSeconds, 3),
                Table::num(b.fps, 0)});
  table.print(std::cout);
  std::cout << "\nidentical surfaces : " << (identical ? "yes" : "NO — BUG")
            << "\nspeedup (B/A)      : " << Table::num(speedup, 2)
            << "\nshard balance      : " << Table::num(balance, 3)
            << "\nenvelopes exchanged: " << b.stats.envelopesExchanged << '\n';
  std::cout << "\nFault tolerance (crash shard " << shardsB - 1 << " at epoch "
            << ft.crashEpoch << ", checkpoint every 2):"
            << "\n  recovered identical: " << (ftIdentical ? "yes" : "NO — BUG")
            << "\n  restarts/replayed  : " << ft.stats.shardRestarts << " / "
            << ft.stats.envelopesReplayed << " envelopes over "
            << ft.stats.recoveryEpochs << " epochs"
            << "\n  checkpoint overhead: " << Table::num(ft.checkpointSeconds, 3)
            << " s of " << Table::num(ft.runSeconds, 3) << " s ("
            << ft.checkpointsWritten << " checkpoints, last "
            << ft.checkpointBytes << " bytes)\n";

  const bool dumped = dumpSurfaces(outA, a) && dumpSurfaces(outB, b);

  if (!noJson) {
    std::string sidecar = "{\n    \"shards_a\": " + std::to_string(shardsA) +
                          ",\n    \"shards_b\": " + std::to_string(shardsB) +
                          ",\n    \"jobs\": " + std::to_string(jobs) +
                          ",\n    \"segments\": " +
                          std::to_string(config.segments) +
                          ",\n    \"vehicles\": " +
                          std::to_string(config.vehicles) +
                          ",\n    \"epochs\": " + std::to_string(epochs) +
                          ",\n    \"fps_shards_a\": " + num(a.fps) +
                          ",\n    \"fps_shards_b\": " + num(b.fps) +
                          ",\n    \"speedup\": " + num(speedup) +
                          ",\n    \"balance_ratio\": " + num(balance) +
                          ",\n    \"busy_seconds\": [";
    for (std::size_t s = 0; s < b.stats.busySeconds.size(); ++s) {
      if (s > 0) sidecar += ", ";
      sidecar += num(b.stats.busySeconds[s]);
    }
    sidecar += "],\n    \"envelopes_exchanged\": " +
               std::to_string(b.stats.envelopesExchanged) +
               ",\n    \"identical\": " + (identical ? "true" : "false") +
               "\n  }";

    const std::string faultSidecar =
        "{\n    \"checkpoint_seconds\": " + num(ft.checkpointSeconds) +
        ",\n    \"wall_clock_seconds\": " + num(ft.runSeconds) +
        ",\n    \"checkpoints_written\": " +
        std::to_string(ft.checkpointsWritten) +
        ",\n    \"checkpoint_bytes\": " + std::to_string(ft.checkpointBytes) +
        ",\n    \"crash_epoch\": " + std::to_string(ft.crashEpoch) +
        ",\n    \"shard_restarts\": " +
        std::to_string(ft.stats.shardRestarts) +
        ",\n    \"recovery_epochs\": " +
        std::to_string(ft.stats.recoveryEpochs) +
        ",\n    \"envelopes_replayed\": " +
        std::to_string(ft.stats.envelopesReplayed) +
        ",\n    \"crc_rejects\": " + std::to_string(ft.stats.crcRejects) +
        ",\n    \"identical\": " + (ftIdentical ? "true" : "false") +
        "\n  }";

    // Headline throughput is the partitioned run: frames over ITS wall
    // clock, so frames_per_second == sharding.fps_shards_b.
    obs::BenchRunInfo info;
    info.wallClockSeconds = b.runSeconds;
    info.framesDelivered = b.framesDelivered;
    info.addExtra("sharding", sidecar);
    info.addExtra("fault_tolerance", faultSidecar);
    obs::writeBenchJson("megacity", b.snapshot, info);
  }

  const bool healthy = identical && ftIdentical && dumped &&
                       a.framesDelivered > 0 && ft.stats.shardRestarts == 1 &&
                       ft.stats.envelopesReplayed > 0 &&
                       timer.elapsedSeconds() > 0.0;
  return healthy ? 0 : 1;
}
