// Ablation D — closing the gray hole gap: watchdog forwarding observation
// (the §V-C trust-scheme mechanism) alongside BlackDP.
//
// The gray hole keeps an honest control plane, so BlackDP's probe pair has
// nothing to confirm (Ablation C measures the PDR damage). Watchdogs on the
// surrounding vehicles overhear its forwarding behaviour instead and flag
// it locally. The bench also reports what the paper warns about: local
// opinions are noisy (range asymmetry causes unfair charges), which is why
// they rank below trusted-RSU confirmation in BlackDP's design.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "baselines/watchdog.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/parallel.hpp"

namespace {

/// One trial's foldable tallies.
struct WatchdogTrial {
  bool exposed{false};
  bool flaggedWhileExposed{false};
  std::uint32_t blackdpConfirmedGray{0};
  std::uint64_t honestFlags{0};
  std::uint64_t dropsCharged{0};
  std::uint32_t observers{0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 10;
  std::cout << "Ablation D — watchdog vs. the gray hole (" << trials
            << " trials, " << runner.jobs() << " jobs)\n\n";

  const std::vector<WatchdogTrial> outcomes = runner.map<WatchdogTrial>(
      trials, [](std::size_t t) {
    WatchdogTrial outcome;
    scenario::ScenarioConfig config;
    config.seed = 7000 + t;
    config.attack = scenario::AttackType::kNone;
    config.evasion.firstEvasiveCluster = 99;
    scenario::HighwayScenario world(config);

    // Gray holes all along the route corridor: some will end up carrying
    // (and eating) the source's traffic.
    attack::GrayHoleConfig gray;
    gray.dropProbability = 0.8;
    gray.advertiseBoost = 5;
    std::vector<scenario::VehicleEntity*> holes;
    for (std::uint32_t c = 1; c <= 6; ++c) {
      holes.push_back(&world.spawnGrayHole(common::ClusterId{c}, gray));
    }

    // Watchdogs on every honest vehicle.
    std::vector<std::unique_ptr<baselines::Watchdog>> watchdogs;
    for (auto& vehicle : world.vehicles()) {
      if (vehicle->isAttacker()) continue;
      watchdogs.push_back(std::make_unique<baselines::Watchdog>(
          world.simulator(), *vehicle->node));
    }

    (void)world.runVerification();
    (void)world.sendDataBurst(150);

    // Did any gray hole actually carry (and eat) traffic this trial?
    for (const scenario::VehicleEntity* hole : holes) {
      if (hole->grayHole->grayStats().dataSeen >= 20) outcome.exposed = true;
    }

    // BlackDP's view: report every gray hole, probe, get nothing.
    for (std::size_t h = 0; h < holes.size(); ++h) {
      world.injectDetectionRequest(
          world.source(), holes[h]->address(),
          common::ClusterId{static_cast<std::uint32_t>(h + 1)});
    }
    world.runFor(sim::Duration::seconds(5));
    for (const core::SessionRecord& s : world.detectionSummary().sessions) {
      if (world.isAttackerPseudonym(s.suspect) &&
          (s.verdict == core::Verdict::kSingleBlackHole ||
           s.verdict == core::Verdict::kCooperativeBlackHole)) {
        ++outcome.blackdpConfirmedGray;
      }
    }

    // Watchdog view: any gray hole flagged by any sender-side watchdog?
    bool flagged = false;
    for (const auto& watchdog : watchdogs) {
      outcome.dropsCharged += watchdog->stats().dropsCharged;
      for (const common::Address& suspect : watchdog->suspects()) {
        if (world.isAttackerPseudonym(suspect)) {
          flagged = true;
          ++outcome.observers;
        } else {
          ++outcome.honestFlags;
        }
      }
    }
    outcome.flaggedWhileExposed = flagged && outcome.exposed;
    return outcome;
  });

  std::uint32_t grayFlagged = 0;
  std::uint32_t trialsWithExposure = 0;
  std::uint32_t blackdpConfirmedGray = 0;
  std::uint64_t honestFlags = 0;
  std::uint64_t dropsCharged = 0;
  metrics::RunningStat observersPerTrial;
  for (const WatchdogTrial& outcome : outcomes) {
    if (outcome.exposed) ++trialsWithExposure;
    if (outcome.flaggedWhileExposed) ++grayFlagged;
    blackdpConfirmedGray += outcome.blackdpConfirmedGray;
    honestFlags += outcome.honestFlags;
    dropsCharged += outcome.dropsCharged;
    observersPerTrial.add(outcome.observers);
  }

  Table table({"Metric", "Value"});
  table.addRow({"trials where a gray hole carried traffic",
                std::to_string(trialsWithExposure) + "/" +
                    std::to_string(trials)});
  table.addRow({"...of which flagged by >=1 watchdog",
                std::to_string(grayFlagged) + "/" +
                    std::to_string(trialsWithExposure)});
  table.addRow({"mean independent observers flagging it",
                Table::num(observersPerTrial.mean(), 1)});
  table.addRow({"BlackDP confirmations of the gray hole",
                std::to_string(blackdpConfirmedGray) + "/" +
                    std::to_string(trials) + " (expected 0: no AODV "
                                             "violation)"});
  table.addRow({"honest nodes flagged by some watchdog (noise)",
                std::to_string(honestFlags)});
  table.addRow({"total drops charged", std::to_string(dropsCharged)});
  table.print(std::cout);

  obs::MetricsRegistry registry;
  registry.counter("watchdog.trials").add(trials);
  registry.counter("watchdog.trials_with_exposure").add(trialsWithExposure);
  registry.counter("watchdog.gray_flagged").add(grayFlagged);
  registry.counter("watchdog.blackdp_confirmed_gray")
      .add(blackdpConfirmedGray);
  registry.counter("watchdog.honest_flags").add(honestFlags);
  registry.counter("watchdog.drops_charged").add(dropsCharged);
  obs::addRunningStat(registry, "watchdog.observers_per_trial",
                      observersPerTrial);
  obs::writeBenchJson("ablation_watchdog", registry.snapshot(), timer.info());

  std::cout << "\nwatchdogs catch what BlackDP structurally cannot; their "
               "noise is why the paper\nroutes verdicts through trusted "
               "RSUs instead of peer opinion.\n";

  const bool ok = trialsWithExposure > 0 &&
                  grayFlagged >= trialsWithExposure * 7 / 10 &&
                  blackdpConfirmedGray == 0;
  std::cout << (ok ? "\nshape check: PASS\n" : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
