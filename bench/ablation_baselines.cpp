// Ablation A — BlackDP vs. the source-side baselines from Related Work (§V).
//
// Runs the same seeded worlds through BlackDP and through the
// sequence-number heuristics (Jaiswal first-RREP comparison, Jhaveri PEAK,
// Tan static thresholds), grading each against ground truth. Supports the
// paper's two criticisms of SN methods: they need multiple RREPs to compare
// (blind when the attacker is the only replier) and a threshold can be
// undercut by an adaptive forger; and they cannot tell the cooperative
// teammate at all. BlackDP examines behaviour through trusted RSUs instead.
#include <cstdlib>
#include <iostream>

#include "metrics/table.hpp"
#include "obs/bench_json.hpp"
#include "scenario/experiments.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  const obs::BenchTimer timer;
  const sim::ParallelRunner runner{sim::consumeJobsFlag(argc, argv)};
  const std::uint32_t trials =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 60;
  std::cout << "Ablation A — BlackDP vs. source-side baselines (" << trials
            << " trials per treatment, attacker in cluster 2)\n\n";

  // The PEAK baseline is stateful across a treatment's discoveries, so the
  // comparison parallelises at the attack-treatment level only (two tasks).
  const std::vector<scenario::BaselineCell> cells =
      scenario::runBaselineComparison(trials, /*seedBase=*/424242,
                                      common::ClusterId{2}, &runner);

  obs::MetricsRegistry registry;
  for (const scenario::BaselineCell& cell : cells) {
    const std::string prefix = "baseline." + cell.detector + "." +
                               std::string{scenario::toString(cell.attack)};
    obs::addConfusion(registry, prefix, cell.matrix);
    registry.counter(prefix + ".trials_with_comparison")
        .add(cell.trialsWithComparison);
  }
  obs::writeBenchJson("ablation_baselines", registry.snapshot(), timer.info());

  Table table({"Attack", "Detector", "Recall (TPR)", "FP count",
               ">=2 RREPs to compare"});
  double blackdpRecall = 0.0;
  double bestBaselineRecall = 0.0;
  std::uint64_t blackdpFp = 0;
  for (const scenario::BaselineCell& cell : cells) {
    table.addRow({std::string(scenario::toString(cell.attack)), cell.detector,
                  Table::percent(cell.matrix.recall()),
                  std::to_string(cell.matrix.fp()),
                  std::to_string(cell.trialsWithComparison)});
    if (cell.detector == "blackdp") {
      blackdpRecall += cell.matrix.recall() / 2.0;
      blackdpFp += cell.matrix.fp();
    } else {
      bestBaselineRecall = std::max(bestBaselineRecall, cell.matrix.recall());
    }
  }
  table.print(std::cout);

  std::cout << "\nBlackDP mean recall  : " << Table::percent(blackdpRecall)
            << " (FP " << blackdpFp << ")\n";
  std::cout << "best baseline recall : " << Table::percent(bestBaselineRecall)
            << '\n';

  const bool ok = blackdpFp == 0 && blackdpRecall >= bestBaselineRecall;
  std::cout << (ok ? "\nshape check: PASS (BlackDP >= every baseline, with "
                     "zero false positives)\n"
                   : "\nshape check: FAIL\n");
  return ok ? 0 : 1;
}
