// Ablation B — the paper's §III-C limitation: authentication and detection
// overhead at the cluster head. Google-benchmark micro-benchmarks of every
// cryptographic operation a CH performs per report, plus the verification-
// table dedup factor under congestion (many vehicles reporting the same
// suspect at once).
#include <benchmark/benchmark.h>

#include "core/secure.hpp"
#include "crypto/sha256.hpp"
#include "obs/bench_json.hpp"
#include "scenario/highway_scenario.hpp"

namespace {

using namespace blackdp;

void BM_Sha256_64B(benchmark::State& state) {
  common::Bytes data(64, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(
        std::span<const std::uint8_t>{data.data(), data.size()}));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_1KiB(benchmark::State& state) {
  common::Bytes data(1024, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(
        std::span<const std::uint8_t>{data.data(), data.size()}));
  }
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256(benchmark::State& state) {
  common::Bytes data(256, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmacSha256(
        std::string_view{"shared-key"},
        std::string_view{reinterpret_cast<const char*>(data.data()),
                         data.size()}));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_SignRrep(benchmark::State& state) {
  crypto::CryptoEngine engine{1};
  const crypto::KeyPair keys = engine.generateKeyPair();
  aodv::RouteReply rrep;
  rrep.destSeq = 42;
  const common::Bytes body = rrep.canonicalBytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sign(
        keys.priv, std::span<const std::uint8_t>{body.data(), body.size()}));
  }
}
BENCHMARK(BM_SignRrep);

void BM_VerifySecureRrep(benchmark::State& state) {
  // Full CH-side verification: TA certificate check + payload signature.
  sim::Simulator simulator;
  crypto::CryptoEngine engine{1};
  crypto::TaNetwork ta{simulator, engine};
  const common::TaId taId = ta.addAuthority();
  const crypto::Enrollment enrollment =
      ta.enroll(taId, common::NodeId{1}).value();

  aodv::RouteReply rrep;
  rrep.destSeq = 42;
  rrep.replier = enrollment.certificate.pseudonym;
  const common::Bytes body = rrep.canonicalBytes();
  const aodv::SecureEnvelope envelope = core::makeEnvelope(
      body, {enrollment.certificate, enrollment.privateKey}, engine);
  const std::optional<aodv::SecureEnvelope> opt{envelope};

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::verifyEnvelope(body, opt, rrep.replier, ta, engine,
                             simulator.now()));
  }
}
BENCHMARK(BM_VerifySecureRrep);

void BM_EnrollPseudonym(benchmark::State& state) {
  sim::Simulator simulator;
  crypto::CryptoEngine engine{1};
  crypto::TaNetwork ta{simulator, engine};
  const common::TaId taId = ta.addAuthority();
  std::uint32_t node = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ta.enroll(taId, common::NodeId{node++}));
  }
}
BENCHMARK(BM_EnrollPseudonym);

/// Verification-table dedup under congestion: `reporters` vehicles file a
/// d_req against the same suspect, nearly simultaneously. The CH runs ONE
/// probe session regardless; the counter reports how many probes were saved.
void BM_VerificationTableDedup(benchmark::State& state) {
  const auto reporters = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t probesSent = 0;
  std::uint64_t reportsFiled = 0;
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.seed = 99 + reporters;
    config.attack = scenario::AttackType::kSingle;
    config.attackerCluster = common::ClusterId{1};
    config.evasion.firstEvasiveCluster = 99;
    scenario::HighwayScenario world(config);
    world.runFor(sim::Duration::milliseconds(500));

    const common::Address suspect = world.primaryAttacker()->address();
    std::uint32_t filed = 0;
    for (auto& vehicle : world.vehicles()) {
      if (filed >= reporters) break;
      if (vehicle->isAttacker()) continue;
      if (vehicle->membership->currentCluster() != common::ClusterId{1}) {
        continue;
      }
      world.injectDetectionRequest(*vehicle, suspect, common::ClusterId{1});
      ++filed;
    }
    world.runFor(sim::Duration::seconds(5));
    probesSent += world.rsu(common::ClusterId{1}).detector->stats().probesSent;
    reportsFiled += filed;
  }
  state.counters["reports"] =
      static_cast<double>(reportsFiled) /
      static_cast<double>(state.iterations());
  state.counters["probes"] = static_cast<double>(probesSent) /
                             static_cast<double>(state.iterations());
}
BENCHMARK(BM_VerificationTableDedup)->Arg(1)->Arg(4)->Arg(8);

/// Deterministic companion workload for the BENCH JSON: one congested-cluster
/// dedup world (8 reporters), so the timing-free dedup factor is archived
/// alongside the google-benchmark timings on stdout.
void writeDedupMetrics(const obs::BenchTimer& timer) {
  obs::MetricsRegistry registry;
  scenario::ScenarioConfig config;
  config.seed = 99 + 8;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{1};
  config.evasion.firstEvasiveCluster = 99;
  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));

  const common::Address suspect = world.primaryAttacker()->address();
  std::uint32_t filed = 0;
  for (auto& vehicle : world.vehicles()) {
    if (filed >= 8) break;
    if (vehicle->isAttacker()) continue;
    if (vehicle->membership->currentCluster() != common::ClusterId{1}) {
      continue;
    }
    world.injectDetectionRequest(*vehicle, suspect, common::ClusterId{1});
    ++filed;
  }
  world.runFor(sim::Duration::seconds(5));
  const core::DetectorStats stats =
      world.rsu(common::ClusterId{1}).detector->stats();
  registry.counter("overhead.dedup.reports_filed").add(filed);
  registry.counter("overhead.dedup.probes_sent").add(stats.probesSent);
  registry.counter("overhead.dedup.deduplicated").add(stats.dreqDeduplicated);
  obs::writeBenchJson("ablation_overhead", registry.snapshot(), timer.info());
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchTimer timer;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeDedupMetrics(timer);
  return 0;
}
